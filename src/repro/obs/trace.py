"""Request tracing: lightweight spans with parent links and a bounded ring.

Aggregate telemetry (:mod:`repro.obs.metrics`) says *how much* time the
service spends; a trace says *where one request's time went*: queue-wait vs
batch-fill vs kernel vs cache.  The model is deliberately small -- this is
an in-process flight recorder, not a distributed-tracing client:

* a :class:`Trace` is one request's tree of :class:`Span` records, keyed
  by a service-wide monotonically increasing ``trace_id``,
* a :class:`Span` has a name, monotonic start/end timestamps (seconds, the
  service's injectable clock), a parent link, free-form ``attrs`` and
  cross-trace ``links`` (a deduplicated follower links to the primary
  request's kernel span), and
* the :class:`Tracer` owns the sampling decision (every Nth request; 0
  disables tracing outright) and a bounded ring of completed traces, so a
  service that runs for weeks holds a constant amount of trace memory.

Overhead discipline: an unsampled request costs one lock-free counter
increment and a modulo; a sampled request costs a handful of list appends
and clock reads.  ``scripts/check_obs.py`` holds the end-to-end service
throughput overhead of the default sampling rate to <= 5%.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError

#: Span name of a trace's root (the whole request, submit to resolve).
ROOT_SPAN = "request"


class Span:
    """One named, timed section of a trace.

    ``end_s`` is ``None`` while the span is open.  ``links`` carries
    references to other traces' spans as plain dicts (e.g. a dedup
    follower's ``{"trace_id": ..., "span": "kernel"}``).
    """

    __slots__ = ("span_id", "name", "start_s", "end_s", "parent_id", "attrs", "links")

    def __init__(
        self,
        span_id: int,
        name: str,
        start_s: float,
        parent_id: Optional[int] = None,
        attrs: Optional[dict[str, Any]] = None,
    ):
        self.span_id = span_id
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.parent_id = parent_id
        self.attrs: dict[str, Any] = attrs or {}
        self.links: list[dict[str, Any]] = []

    @property
    def open(self) -> bool:
        return self.end_s is None

    @property
    def duration_s(self) -> Optional[float]:
        """Span duration in seconds (``None`` while still open)."""
        if self.end_s is None:
            return None
        return max(0.0, self.end_s - self.start_s)

    def add_link(self, **fields: Any) -> None:
        """Attach a cross-trace reference (e.g. the dedup primary's span)."""
        self.links.append(dict(fields))

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "links": [dict(link) for link in self.links],
        }


class Trace:
    """One request's spans, rooted at the submit-to-resolve ``request`` span.

    Spans are tracked by name while open (each stage name occurs at most
    once per trace), so the layer that *ends* a stage never needs the
    object the layer that *started* it held -- the request hand-off across
    scheduler, shard thread and completion callback stays a single object
    reference.
    """

    __slots__ = ("trace_id", "spans", "status", "_open", "_tracer", "_finished")

    def __init__(self, trace_id: int, tracer: "Tracer", start_s: float, **attrs: Any):
        self.trace_id = trace_id
        self._tracer = tracer
        root = Span(0, ROOT_SPAN, start_s, parent_id=None, attrs=dict(attrs))
        self.spans: list[Span] = [root]
        self._open: dict[str, Span] = {}
        self.status: Optional[str] = None
        self._finished = False

    # -- span lifecycle ------------------------------------------------- #
    @property
    def root(self) -> Span:
        return self.spans[0]

    @property
    def finished(self) -> bool:
        return self._finished

    def begin(
        self,
        name: str,
        *,
        t: Optional[float] = None,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Open a child span (parented to the root unless given)."""
        start = self._tracer._clock() if t is None else t
        span = Span(
            len(self.spans),
            name,
            start,
            parent_id=(parent or self.root).span_id,
            attrs=attrs,
        )
        self.spans.append(span)
        self._open[name] = span
        return span

    def end(self, name: str, *, t: Optional[float] = None, **attrs: Any) -> Optional[Span]:
        """Close the open span called ``name`` (no-op when none is open)."""
        span = self._open.pop(name, None)
        if span is None:
            return None
        span.end_s = self._tracer._clock() if t is None else t
        if attrs:
            span.attrs.update(attrs)
        return span

    def span(
        self,
        name: str,
        *,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-closed span in one call (e.g. the kernel)."""
        span = Span(
            len(self.spans),
            name,
            start,
            parent_id=(parent or self.root).span_id,
            attrs=attrs,
        )
        span.end_s = end
        self.spans.append(span)
        return span

    def find(self, name: str) -> Optional[Span]:
        """The first span named ``name``, if any."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def span_names(self) -> tuple[str, ...]:
        return tuple(span.name for span in self.spans)

    def finish(self, status: str = "ok", *, t: Optional[float] = None, **attrs: Any) -> None:
        """Close the trace: end every open span and move it to the ring.

        Idempotent -- every terminal path (resolve, eviction, shed,
        shard-side failure) may call it; the first caller wins.
        """
        if self._finished:
            return
        now = self._tracer._clock() if t is None else t
        for span in list(self._open.values()):
            span.end_s = now
        self._open.clear()
        root = self.root
        root.end_s = now
        if attrs:
            root.attrs.update(attrs)
        self.status = status
        self._finished = True
        self._tracer._complete(self)

    # -- rendering ------------------------------------------------------ #
    @property
    def duration_s(self) -> Optional[float]:
        return self.root.duration_s

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "status": self.status,
            "duration_s": self.duration_s,
            "spans": [span.to_dict() for span in self.spans],
        }


class Tracer:
    """Sampling trace factory plus the bounded ring of completed traces.

    Parameters
    ----------
    capacity:
        Completed traces retained; the oldest is evicted when a newer one
        finishes (ring-buffer semantics, O(capacity) memory forever).
    sample_every:
        Trace every Nth started request.  ``1`` traces everything, ``16``
        (the service default) keeps overhead negligible at high rates, and
        ``0`` disables tracing -- :meth:`start` returns ``None`` and costs
        one branch.
    clock:
        Monotonic time source, injectable so traces share the service's
        clock in tests.
    """

    def __init__(
        self,
        capacity: int = 512,
        sample_every: int = 16,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if sample_every < 0:
            raise ConfigurationError(
                f"sample_every must be >= 0 (0 disables), got {sample_every}"
            )
        self.capacity = int(capacity)
        self.sample_every = int(sample_every)
        self._clock = clock
        self._ids = itertools.count()
        self._seen = itertools.count()
        self._lock = threading.Lock()
        self._active: dict[int, Trace] = {}
        self._completed: "OrderedDict[int, Trace]" = OrderedDict()
        self.dropped_traces = 0  # completed traces evicted from the ring

    @property
    def enabled(self) -> bool:
        return self.sample_every > 0

    def start(self, *, t: Optional[float] = None, **attrs: Any) -> Optional[Trace]:
        """Begin a trace for one request, or ``None`` when not sampled.

        ``t`` pins the root span's start (e.g. the submit timestamp read
        just before the sampling decision); the clock is read when omitted.
        """
        if self.sample_every == 0:
            return None
        if next(self._seen) % self.sample_every != 0:
            return None
        trace = Trace(next(self._ids), self, self._clock() if t is None else t, **attrs)
        with self._lock:
            self._active[trace.trace_id] = trace
        return trace

    def _complete(self, trace: Trace) -> None:
        with self._lock:
            self._active.pop(trace.trace_id, None)
            self._completed[trace.trace_id] = trace
            while len(self._completed) > self.capacity:
                self._completed.popitem(last=False)
                self.dropped_traces += 1

    # -- retrieval ------------------------------------------------------ #
    def get(self, trace_id: Optional[int]) -> Optional[Trace]:
        """Look up a trace (in flight or completed) by id."""
        if trace_id is None:
            return None
        with self._lock:
            trace = self._active.get(trace_id)
            if trace is None:
                trace = self._completed.get(trace_id)
            return trace

    def completed(self) -> tuple[Trace, ...]:
        """Completed traces, oldest first."""
        with self._lock:
            return tuple(self._completed.values())

    @property
    def active_count(self) -> int:
        with self._lock:
            return len(self._active)

    @property
    def completed_count(self) -> int:
        with self._lock:
            return len(self._completed)
