"""Project-native static analysis: machine-checked structural invariants.

The serve stack is a deeply concurrent system -- per-metric locks, shard
worker threads with an epoch/claim protocol, a supervisor watchdog,
breaker boards, shadow evaluators -- and its hard-won invariants (lock
ordering, guarded shared state, named daemon threads, seed-replayable
randomness, one metric vocabulary) used to live in reviewer memory.
This package encodes each invariant once, as an AST-level :class:`Rule`
over a parsed :class:`Project`, and ``scripts/check_static.py`` gates CI
on them: the contract is the code, deviations are findings.

Stdlib :mod:`ast` only -- the gate runs in well under five seconds with
no third-party dependencies.

Usage::

    from pathlib import Path
    from repro.analysis import DEFAULT_RULES, load_project, run_rules

    project = load_project(Path("src"), package="repro")
    for finding in run_rules(project, DEFAULT_RULES):
        print(finding.render())

Suppression: ``# repro: allow[rule-name]`` on the finding's line (or a
standalone comment line directly above) silences that rule there --
always pair it with a comment explaining *why* the exception is sound.
Grandfathered findings live in the committed ``baseline.json`` next to
this file; the gate fails only on findings absent from it.
"""

from __future__ import annotations

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineDiff,
    diff_against_baseline,
    load_baseline,
    save_baseline,
)
from repro.analysis.framework import Finding, Rule, render_report, run_rules
from repro.analysis.loader import Project, load_project
from repro.analysis.rules_concurrency import (
    LockOrderRule,
    ThreadHygieneRule,
    UnguardedSharedStateRule,
)
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_structure import (
    ErrorTaxonomyRule,
    ExportSurfaceRule,
    ImportCycleRule,
)
from repro.analysis.rules_vocabulary import (
    EventVocabularyRule,
    MetricVocabularyRule,
)

#: Every shipped rule, in report order.  ``scripts/check_static.py`` runs
#: exactly this tuple; tests instantiate rules individually.
DEFAULT_RULES: tuple[Rule, ...] = (
    LockOrderRule(),
    UnguardedSharedStateRule(),
    ThreadHygieneRule(),
    DeterminismRule(),
    MetricVocabularyRule(),
    EventVocabularyRule(),
    ErrorTaxonomyRule(),
    ExportSurfaceRule(),
    ImportCycleRule(),
)

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_RULES",
    "BaselineDiff",
    "DeterminismRule",
    "ErrorTaxonomyRule",
    "EventVocabularyRule",
    "ExportSurfaceRule",
    "Finding",
    "ImportCycleRule",
    "LockOrderRule",
    "MetricVocabularyRule",
    "Project",
    "Rule",
    "ThreadHygieneRule",
    "UnguardedSharedStateRule",
    "diff_against_baseline",
    "load_baseline",
    "load_project",
    "render_report",
    "run_rules",
    "save_baseline",
]
