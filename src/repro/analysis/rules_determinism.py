"""Determinism rule: no ambient randomness, no wall clocks in hot paths.

The resilience and rollout layers promise *seed-replayable* behaviour:
the Kth fault fired at a site and the Kth canary routing decision are
pure functions of (seed, site/name, K).  One call into the process-global
RNG (``random.random()``, ``np.random.rand()``) or one wall-clock read
(``time.time()``) on a serve/obs code path silently breaks that replay
contract, so this rule bans the ambient sources outright:

* global-RNG calls (``random.*`` / ``np.random.*`` module functions) are
  flagged everywhere in the tree -- seeded generator objects
  (``random.Random(seed)``, ``np.random.default_rng(seed)``) are the
  sanctioned alternative and are not flagged,
* wall-clock reads (``time.time()``, ``datetime.now()`` and friends) are
  flagged in modules under a ``serve`` or ``obs`` package, where
  ``time.monotonic`` / ``time.perf_counter`` or an injected ``clock``
  callable is required (wall time may only appear behind an explicit
  pragma, e.g. an exporter stamping human-readable timestamps).
"""

from __future__ import annotations

from typing import Iterator

import ast

from repro.analysis.framework import Finding, Rule
from repro.analysis.loader import Project, dotted_name

#: Functions of the process-global ``random`` module RNG.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "betavariate", "choice", "choices", "expovariate", "gammavariate",
        "gauss", "getrandbits", "lognormvariate", "normalvariate",
        "paretovariate", "randbytes", "randint", "random", "randrange",
        "sample", "seed", "shuffle", "triangular", "uniform",
        "vonmisesvariate", "weibullvariate",
    }
)

#: Functions of the legacy process-global numpy RNG.
GLOBAL_NP_RANDOM_FUNCS = frozenset(
    {
        "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "multinomial",
        "multivariate_normal", "negative_binomial", "normal", "pareto",
        "permutation", "poisson", "power", "rand", "randint", "randn",
        "random", "random_integers", "random_sample", "rayleigh", "seed",
        "shuffle", "standard_cauchy", "standard_exponential",
        "standard_gamma", "standard_normal", "standard_t", "triangular",
        "uniform", "vonmises", "wald", "weibull", "zipf",
    }
)

#: Dotted call names that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Package path components in which wall-clock reads are banned.
CLOCK_SCOPED_PARTS = ("serve", "obs")


class DeterminismRule(Rule):
    """Ban ambient RNG everywhere and wall clocks on serve/obs paths."""

    name = "determinism"
    description = (
        "no process-global random.* / np.random.* calls; no "
        "time.time()/datetime.now() in serve/obs modules (use "
        "monotonic or an injected clock)"
    )
    hazard = (
        "seed-replayable fault injection and canary routing silently stop "
        "replaying; latency math jumps when the wall clock steps"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            parts = module.name.split(".")
            clock_scoped = any(part in CLOCK_SCOPED_PARTS for part in parts)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = dotted_name(node.func)
                if name is None:
                    continue
                yield from self._check_call(module, node, name, clock_scoped)

    def _check_call(
        self, module, node: ast.Call, name: str, clock_scoped: bool
    ) -> Iterator[Finding]:
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in GLOBAL_RANDOM_FUNCS:
                yield self.finding(
                    module.rel_path,
                    node.lineno,
                    f"call to process-global RNG {name}() -- use a seeded "
                    "random.Random(seed) instance so behaviour replays",
                )
            return
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] in GLOBAL_NP_RANDOM_FUNCS
        ):
            yield self.finding(
                module.rel_path,
                node.lineno,
                f"call to process-global RNG {name}() -- use a seeded "
                "np.random.default_rng(seed) Generator so behaviour replays",
            )
            return
        if clock_scoped and name in WALL_CLOCK_CALLS:
            yield self.finding(
                module.rel_path,
                node.lineno,
                f"wall-clock read {name}() in a serve/obs module -- use "
                "time.monotonic()/perf_counter() or the injected clock "
                "(wall time steps under NTP and breaks latency math)",
            )
