"""Committed-baseline support: the gate fails only on *new* findings.

The baseline is a JSON document listing grandfathered finding keys
(rule + path + message; line numbers are deliberately absent so findings
survive unrelated edits).  ``scripts/check_static.py`` compares a fresh
run against it:

* a finding whose key is **not** in the baseline is *new* -> CI fails,
* a baseline entry no fresh finding matches is *stale* -> reported, and
  removed by ``--update-baseline`` (the gate does not fail on stale
  entries, so deleting dead code never blocks a PR, but leaving them
  around is noise the updater cleans up).

The committed file lives next to this module
(:data:`DEFAULT_BASELINE_PATH`) so the analyzer and its exception list
travel together.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.framework import Finding

#: The baseline committed with the analyzer package.
DEFAULT_BASELINE_PATH = Path(__file__).with_name("baseline.json")

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineDiff:
    """Result of comparing fresh findings against a baseline."""

    new: tuple[Finding, ...]
    known: tuple[Finding, ...]
    stale: tuple[str, ...]  # baseline keys with no matching fresh finding


def load_baseline(path: Path | str = DEFAULT_BASELINE_PATH) -> set[str]:
    """Read baselined finding keys; an absent file means an empty baseline."""
    path = Path(path)
    if not path.exists():
        return set()
    document = json.loads(path.read_text(encoding="utf-8"))
    entries = document.get("findings", [])
    keys = set()
    for entry in entries:
        keys.add(f"{entry['rule']}::{entry['path']}::{entry['message']}")
    return keys


def save_baseline(
    findings: Sequence[Finding], path: Path | str = DEFAULT_BASELINE_PATH
) -> None:
    """Write the given findings as the new baseline (sorted, stable)."""
    entries = sorted(
        (
            {"rule": f.rule, "path": f.path, "message": f.message}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["message"]),
    )
    document = {"version": _FORMAT_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(document, indent=2) + "\n", encoding="utf-8"
    )


def diff_against_baseline(
    findings: Iterable[Finding], baseline: set[str]
) -> BaselineDiff:
    """Split findings into new vs known and report stale baseline keys."""
    new: list[Finding] = []
    known: list[Finding] = []
    seen_keys: set[str] = set()
    for finding in findings:
        seen_keys.add(finding.key)
        (known if finding.key in baseline else new).append(finding)
    stale = tuple(sorted(baseline - seen_keys))
    return BaselineDiff(new=tuple(new), known=tuple(known), stale=stale)
