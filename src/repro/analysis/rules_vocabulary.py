"""Vocabulary rules: the metric and event names are a checked contract.

The observability layer's value rests on one stable vocabulary: the
``serve_*`` / ``pipeline_*`` registry names that ``BENCH_serve.json``
will commit, that ``scripts/check_*.py`` assert against, and that the
README tables document.  Renaming a metric in code without updating the
docs (or vice versa) used to be an unreviewable silent drift; these rules
make it a CI failure:

* **metric-vocabulary** -- every registered name matches the
  ``<subsystem>_<quantity>[_<unit>|_total]`` grammar, carries the suffix
  its kind demands, is registered from exactly one call site, and the
  README / ``scripts/check_*.py`` references and the registrations agree
  in *both* directions (histogram ``_bucket``/``_count``/``_sum`` series
  are recognised as derived), and
* **event-vocabulary** -- every ``emit("kind", ...)`` kind is
  lower_snake_case and documented in the README.

Documentation sources are scanned as text (with ``{a,b}`` brace sets
expanded), so a metric renamed in ``serve/metrics.py`` fails the gate
until the README row moves with it.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.framework import Finding, Rule
from repro.analysis.loader import Project

#: Registered metric names must match this grammar.
METRIC_NAME_RE = re.compile(r"^(serve|pipeline)_[a-z][a-z0-9_]*$")

#: Event kinds must be lower_snake_case.
EVENT_KIND_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Candidate vocabulary tokens in documentation text.
_DOC_TOKEN_RE = re.compile(r"\b(?:serve|pipeline)_[a-z0-9_]*[a-z0-9]")

#: Single-level brace sets in docs: ``serve_rollout_{promotions,demotions}_total``.
_BRACE_RE = re.compile(r"\{([a-z0-9_,\s]+)\}")

#: Derived histogram series suffixes accepted in docs.
_HISTOGRAM_SUFFIXES = ("_bucket", "_count", "_sum")


def _expand_braces(text: str) -> str:
    """Append brace-set expansions so doc tokens match registrations.

    ``a_{x,y}_b`` contributes ``a_x_b`` and ``a_y_b``; the original text
    is kept too.  One level only -- the docs do not nest.
    """
    expansions: list[str] = []

    def expand(match: re.Match) -> None:
        start = match.start()
        end = match.end()
        prefix = re.search(r"[a-z0-9_]*$", text[:start]).group(0)
        suffix = re.match(r"[a-z0-9_]*", text[end:]).group(0)
        for option in match.group(1).split(","):
            expansions.append(prefix + option.strip() + suffix)

    for match in _BRACE_RE.finditer(text):
        if "," in match.group(1):  # {model} / {shard=...} are label refs
            expand(match)
    return text + "\n" + "\n".join(expansions)


def _doc_sources(project: Project) -> list[tuple[str, Path]]:
    """(label, path) pairs of the documentation the vocabulary must match."""
    sources: list[tuple[str, Path]] = []
    root = project.repo_root
    if root is None:
        return sources
    readme = root / "README.md"
    if readme.exists():
        sources.append(("README.md", readme))
    scripts_dir = root / "scripts"
    if scripts_dir.is_dir():
        for path in sorted(scripts_dir.glob("check_*.py")):
            sources.append((f"scripts/{path.name}", path))
    return sources


class MetricVocabularyRule(Rule):
    """Registered metric names: grammar, kind suffix, uniqueness, doc sync."""

    name = "metric-vocabulary"
    description = (
        "serve_*/pipeline_* grammar with kind-appropriate suffixes, one "
        "registration site per name, and two-way agreement with README "
        "and scripts/check_*.py"
    )
    hazard = (
        "a renamed or duplicated metric silently splits dashboards, "
        "baselines and CI assertions"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        registrations: dict[str, list[tuple[str, int, str]]] = {}
        for module in project.modules.values():
            if module.name.startswith(f"{project.package}.analysis"):
                continue
            for reg in module.metric_registrations:
                registrations.setdefault(reg.name, []).append(
                    (module.rel_path, reg.line, reg.kind)
                )

        for name in sorted(registrations):
            sites = registrations[name]
            path, line, kind = sites[0]
            if not METRIC_NAME_RE.match(name):
                yield self.finding(
                    path,
                    line,
                    f"metric {name!r} does not match the "
                    "<serve|pipeline>_<lower_snake> naming grammar",
                )
            yield from self._check_suffix(name, kind, path, line)
            distinct_sites = {(p, l) for p, l, _ in sites}
            if len(distinct_sites) > 1:
                rendered = ", ".join(
                    f"{p}:{l}" for p, l in sorted(distinct_sites)
                )
                yield self.finding(
                    path,
                    line,
                    f"metric {name!r} is registered from "
                    f"{len(distinct_sites)} call sites ({rendered}) -- one "
                    "owner per name; share the metric object instead",
                )
            kinds = {k for _, _, k in sites}
            if len(kinds) > 1:
                yield self.finding(
                    path,
                    line,
                    f"metric {name!r} is registered as multiple kinds "
                    f"({', '.join(sorted(kinds))})",
                )

        yield from self._check_docs(project, registrations)

    def _check_suffix(
        self, name: str, kind: str, path: str, line: int
    ) -> Iterator[Finding]:
        if kind == "counter" and not name.endswith(("_total", "_sum")):
            yield self.finding(
                path,
                line,
                f"counter {name!r} must end in _total (events) or _sum "
                "(summed quantities)",
            )
        elif kind == "histogram" and not name.endswith("_seconds"):
            yield self.finding(
                path,
                line,
                f"histogram {name!r} must carry its unit suffix "
                "(durations are recorded in _seconds)",
            )
        elif kind == "gauge" and name.endswith(("_total", "_sum")):
            yield self.finding(
                path,
                line,
                f"gauge {name!r} must not use the cumulative _total/_sum "
                "suffixes reserved for counters",
            )

    def _normalise_doc_token(
        self, token: str, registered: dict
    ) -> Optional[str]:
        """Map a doc token to the registration it refers to, if any."""
        if token in registered:
            return token
        for suffix in _HISTOGRAM_SUFFIXES:
            if token.endswith(suffix):
                base = token[: -len(suffix)]
                sites = registered.get(base)
                if sites and any(kind == "histogram" for _, _, kind in sites):
                    return base
        return None

    def _check_docs(
        self, project: Project, registered: dict
    ) -> Iterator[Finding]:
        sources = _doc_sources(project)
        if not sources:
            return
        readme_documented: set[str] = set()

        def scan(
            label: str, lines: list[str], first_lineno: int, is_readme: bool
        ):
            for offset, raw_line in enumerate(lines):
                # Brace expansions (``x_{a,b}_total``) only *document*
                # names; staleness is judged on raw tokens, where the
                # trailing context disambiguates wildcards and label refs.
                for token in _DOC_TOKEN_RE.findall(_expand_braces(raw_line)):
                    resolved = self._normalise_doc_token(token, registered)
                    if resolved is not None and is_readme:
                        readme_documented.add(resolved)
                for match in _DOC_TOKEN_RE.finditer(raw_line):
                    token = match.group(0)
                    if self._normalise_doc_token(token, registered):
                        continue
                    trailing = raw_line[match.end() : match.end() + 2]
                    if trailing.startswith(("{", "_{")) or trailing in (
                        "_*",
                        "*",
                    ):
                        # Label reference (``name{model=...}``) or prefix
                        # wildcard (``serve_shadow_*``): fine as long as
                        # some registration matches the prefix.
                        if any(
                            name == token or name.startswith(token + "_")
                            for name in registered
                        ):
                            continue
                    if METRIC_NAME_RE.match(token):
                        yield self.finding(
                            label,
                            first_lineno + offset,
                            f"documented metric {token!r} resolves to no "
                            "registration -- stale doc reference or a "
                            "renamed metric",
                        )

        for label, path in sources:
            text = path.read_text(encoding="utf-8")
            yield from scan(
                label, text.splitlines(), 1, is_readme=label == "README.md"
            )

        # Module docstrings hold the in-tree vocabulary tables
        # (serve/metrics.py, pipeline/metrics.py); keep them in sync too.
        for module in project.modules.values():
            if module.name.startswith(f"{project.package}.analysis"):
                continue
            docstring = ast.get_docstring(module.tree, clean=False)
            if not docstring:
                continue
            start = module.tree.body[0].lineno
            yield from scan(
                module.rel_path, docstring.splitlines(), start, is_readme=False
            )

        # Every registered metric must appear in the README vocabulary --
        # renaming one in code without moving its README row fails here.
        for name in sorted(set(registered) - readme_documented):
            path, line, _ = registered[name][0]
            yield self.finding(
                path,
                line,
                f"metric {name!r} is registered but absent from the README "
                "metric tables -- document it (operators discover the "
                "vocabulary there)",
            )


class EventVocabularyRule(Rule):
    """Emitted event kinds: lower_snake_case and documented in the README."""

    name = "event-vocabulary"
    description = (
        "every emit(...) kind is lower_snake_case and appears "
        "backtick-quoted in the README"
    )
    hazard = "undocumented lifecycle events are invisible to operators"

    def check(self, project: Project) -> Iterator[Finding]:
        readme_text = ""
        if project.repo_root is not None:
            readme = project.repo_root / "README.md"
            if readme.exists():
                readme_text = readme.read_text(encoding="utf-8")
        for module in project.modules.values():
            if module.name.startswith(f"{project.package}.analysis"):
                continue
            for emission in module.event_emissions:
                kind = emission.kind
                if not EVENT_KIND_RE.match(kind):
                    yield self.finding(
                        module.rel_path,
                        emission.line,
                        f"event kind {kind!r} is not lower_snake_case",
                    )
                    continue
                if readme_text and f"`{kind}`" not in readme_text:
                    yield self.finding(
                        module.rel_path,
                        emission.line,
                        f"event kind {kind!r} is emitted but not documented "
                        "in the README (expected a backtick-quoted mention)",
                    )
