"""Rule/Finding framework: what a lint is and how a run is filtered.

A :class:`Rule` inspects a loaded :class:`~repro.analysis.loader.Project`
and yields :class:`Finding`s.  :func:`run_rules` applies the inline
``# repro: allow[rule-name]`` suppression pragmas and returns the
surviving findings in a stable (path, line, rule) order, so reports and
the committed baseline are diffable.

A finding's :attr:`Finding.key` deliberately excludes the line number:
baselined findings must survive unrelated edits above them, so identity
is (rule, path, message) -- messages therefore name the symbol they are
about rather than a position.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.analysis.loader import Project

#: Finding severities, in increasing order of urgency.  The CI gate fails
#: on any *new* finding regardless of severity; severities exist so a
#: report reads in priority order.
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one place in the tree."""

    rule: str
    path: str  # repo-root-relative posix path
    line: int
    message: str
    severity: str = "error"

    @property
    def key(self) -> str:
        """Line-independent identity used by the baseline."""
        return f"{self.rule}::{self.path}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line} {self.rule} {self.message}"


class Rule:
    """Base class for one project-native lint.

    Subclasses set :attr:`name` (the pragma/baseline identifier),
    :attr:`description` and :attr:`hazard`, and implement :meth:`check`.
    """

    name: str = ""
    description: str = ""
    hazard: str = ""
    default_severity: str = "error"

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, message: str, severity: str | None = None
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=path,
            line=line,
            message=message,
            severity=severity or self.default_severity,
        )


def run_rules(
    project: Project, rules: Sequence[Rule]
) -> list[Finding]:
    """Run every rule, drop pragma-suppressed findings, sort the rest."""
    path_to_module = {m.rel_path: m for m in project.modules.values()}
    findings: list[Finding] = []
    for rule in rules:
        for finding in rule.check(project):
            module = path_to_module.get(finding.path)
            if module is not None and module.suppressed(finding.line, rule.name):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


def render_report(findings: Iterable[Finding]) -> str:
    """One ``file:line rule message`` line per finding."""
    return "\n".join(f.render() for f in findings)
