"""Project loader: parse a package tree into an analysable symbol table.

The static-analysis rules in this package do not run on raw ASTs.  This
module parses every ``*.py`` file under a package root once (stdlib
:mod:`ast` only -- no third-party dependency, so the CI gate stays cheap)
and extracts the shared structures the rules actually reason about:

* per-module: the AST, source lines, module-level imports (for the
  import-cycle rule), ``raise`` sites, metric registrations and event
  emissions, and the ``# repro: allow[rule]`` suppression pragmas,
* per-class: lock attributes (``self._x = threading.Lock()``), thread
  entry points (``target=self._run`` or a ``threading.Thread`` base), and
* per-method: attribute writes and intra-class ``self.*()`` calls, each
  annotated with the set of ``self`` locks held at that point (derived
  from lexical ``with self._lock:`` nesting).

Lock tracking is intentionally *intra-instance*: a held-lock set contains
attribute names on ``self`` only, which is where every deadlock this
codebase has actually shipped lived (nested ``with`` plus a helper call
that takes a second lock).  Cross-object lock graphs are out of scope and
belong behind a pragma when a rule misfires on one.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

#: Inline suppression pragma.  ``# repro: allow[rule-a, rule-b]`` on the
#: finding's line (or on a standalone comment line directly above it)
#: silences those rules for that line.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([a-zA-Z0-9_,\- ]+)\]")

#: Constructors whose result makes an instance attribute a "lock" for the
#: concurrency rules.  ``RLock`` is tracked separately: re-acquiring one
#: while held is legal, so it is exempt from the self-deadlock edge.
_LOCK_CONSTRUCTORS = {"Lock", "RLock"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass(frozen=True)
class AttributeWrite:
    """A mutation of ``self.<attr>`` (assign, augassign or item-assign)."""

    attr: str
    line: int
    locks_held: frozenset[str]
    kind: str  # "assign" | "augassign" | "item"


@dataclass(frozen=True)
class SelfCall:
    """An intra-class ``self.<method>(...)`` call site."""

    method: str
    line: int
    locks_held: frozenset[str]


@dataclass(frozen=True)
class LockAcquire:
    """A ``with self.<lock>:`` entry, with the locks already held outside."""

    lock: str
    line: int
    locks_held: frozenset[str]


@dataclass(frozen=True)
class ThreadCreation:
    """A ``threading.Thread(...)`` construction site."""

    line: int
    has_name: bool
    daemon: Optional[bool]  # True/False if a constant kwarg, None if absent
    target_self_method: Optional[str]  # "run" for target=self._run -> "_run"


@dataclass(frozen=True)
class JoinCall:
    """An ``<expr>.join(...)`` call (argument-less joins have no timeout)."""

    line: int
    receiver: str
    has_timeout: bool


@dataclass(frozen=True)
class RaiseSite:
    """A ``raise <Name-or-dotted>(...)`` statement."""

    exc_name: str
    line: int
    function: str  # enclosing function name ("" at module level)


@dataclass(frozen=True)
class MetricRegistration:
    """A ``<registry>.counter|gauge|histogram("name", ...)`` call site."""

    name: str
    kind: str  # counter | gauge | histogram
    line: int


@dataclass(frozen=True)
class EventEmission:
    """An ``emit("kind", ...)`` / ``_emit("kind", ...)`` call site."""

    kind: str
    line: int


@dataclass
class FunctionInfo:
    """One function or method, with lock-annotated writes and calls."""

    name: str
    lineno: int
    node: ast.AST
    writes: list[AttributeWrite] = field(default_factory=list)
    self_calls: list[SelfCall] = field(default_factory=list)
    acquires: list[LockAcquire] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_")


@dataclass
class ClassInfo:
    """One class: its methods, lock attributes and thread entry points."""

    name: str
    lineno: int
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    lock_attrs: set[str] = field(default_factory=set)
    rlock_attrs: set[str] = field(default_factory=set)
    thread_targets: set[str] = field(default_factory=set)

    @property
    def is_thread_subclass(self) -> bool:
        return any(b.split(".")[-1] == "Thread" for b in self.bases)

    def entry_points(self) -> set[str]:
        """Method names that run on a worker thread."""
        entries = set(self.thread_targets)
        if self.is_thread_subclass and "run" in self.methods:
            entries.add("run")
        return entries

    def transitive_acquires(self, method: str) -> frozenset[str]:
        """Locks a method may take, following intra-class calls to fixpoint."""
        seen: set[str] = set()
        acquired: set[str] = set()
        stack = [method]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.methods.get(current)
            if info is None:
                continue
            acquired.update(
                a.lock for a in info.acquires if a.lock in self.lock_attrs
            )
            stack.extend(c.method for c in info.self_calls)
        return frozenset(acquired)

    def reachable_methods(self, roots: set[str]) -> set[str]:
        """Methods reachable from ``roots`` through intra-class calls."""
        seen: set[str] = set()
        stack = list(roots)
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.methods.get(current)
            if info is not None:
                stack.extend(c.method for c in info.self_calls)
        return seen


@dataclass
class ModuleInfo:
    """One parsed module and everything the rules need from it."""

    name: str  # dotted module name, e.g. "repro.serve.shard"
    path: Path
    source: str
    tree: ast.Module
    rel_path: str  # path rendered in findings (repo-root relative)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    imports: list[tuple[str, int]] = field(default_factory=list)  # module-level
    raises: list[RaiseSite] = field(default_factory=list)
    metric_registrations: list[MetricRegistration] = field(default_factory=list)
    event_emissions: list[EventEmission] = field(default_factory=list)
    thread_creations: list[ThreadCreation] = field(default_factory=list)
    join_calls: list[JoinCall] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    standalone_pragma_lines: dict[int, set[str]] = field(default_factory=dict)

    def suppressed(self, line: int, rule: str) -> bool:
        """True if ``rule`` is pragma-silenced on ``line`` (or just above)."""
        for rules in (
            self.suppressions.get(line),
            self.standalone_pragma_lines.get(line - 1),
        ):
            if rules and (rule in rules or "*" in rules):
                return True
        return False


@dataclass
class Project:
    """Every module of one package, parsed and indexed for the rules."""

    package: str
    src_root: Path  # directory containing the package directory
    repo_root: Optional[Path]  # for README / scripts cross-references
    modules: dict[str, ModuleInfo] = field(default_factory=dict)

    def module_names(self) -> list[str]:
        return sorted(self.modules)

    def iter_classes(self) -> Iterator[tuple[ModuleInfo, ClassInfo]]:
        for module in self.modules.values():
            for cls in module.classes.values():
                yield module, cls


def _scan_pragmas(module: ModuleInfo) -> None:
    for lineno, text in enumerate(module.source.splitlines(), start=1):
        match = PRAGMA_RE.search(text)
        if not match:
            continue
        rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
        module.suppressions.setdefault(lineno, set()).update(rules)
        if text.lstrip().startswith("#"):
            module.standalone_pragma_lines.setdefault(lineno, set()).update(rules)


def _is_lock_constructor(node: ast.AST) -> Optional[str]:
    """Return "Lock"/"RLock" if ``node`` constructs a threading lock."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    leaf = name.split(".")[-1]
    return leaf if leaf in _LOCK_CONSTRUCTORS else None


class _FunctionScanner(ast.NodeVisitor):
    """Walk one method body tracking the lexical ``with self.X:`` stack."""

    def __init__(self, info: FunctionInfo, cls: Optional[ClassInfo]):
        self.info = info
        self.cls = cls
        self.held: list[str] = []

    # -- lock context ------------------------------------------------- #
    def visit_With(self, node: ast.With) -> None:
        pushed = 0
        for item in node.items:
            target = dotted_name(item.context_expr)
            if target is not None and target.startswith("self."):
                attr = target.split(".", 1)[1]
                if "." not in attr:  # only direct self.<attr> managers
                    self.info.acquires.append(
                        LockAcquire(
                            lock=attr,
                            line=item.context_expr.lineno,
                            locks_held=frozenset(self.held),
                        )
                    )
                    self.held.append(attr)
                    pushed += 1
        for child in node.body:
            self.visit(child)
        for _ in range(pushed):
            self.held.pop()

    # -- attribute writes --------------------------------------------- #
    def _record_write(self, target: ast.AST, line: int, kind: str) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_write(element, line, kind)
            return
        if isinstance(target, ast.Subscript):
            base = dotted_name(target.value)
            if base is not None and base.startswith("self."):
                attr = base.split(".", 1)[1].split(".")[0]
                self.info.writes.append(
                    AttributeWrite(attr, line, frozenset(self.held), "item")
                )
            return
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            if target.value.id == "self":
                self.info.writes.append(
                    AttributeWrite(target.attr, line, frozenset(self.held), kind)
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_write(target, node.lineno, "assign")
        if self.cls is not None:
            lock_kind = _is_lock_constructor(node.value)
            if lock_kind is not None:
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self.cls.lock_attrs.add(target.attr)
                        if lock_kind == "RLock":
                            self.cls.rlock_attrs.add(target.attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write(node.target, node.lineno, "augassign")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_write(node.target, node.lineno, "assign")
        self.generic_visit(node)

    # -- calls --------------------------------------------------------- #
    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and name.startswith("self."):
            attr = name.split(".", 1)[1]
            if "." not in attr:
                self.info.self_calls.append(
                    SelfCall(attr, node.lineno, frozenset(self.held))
                )
        self.generic_visit(node)

    # Nested defs run later (callbacks, thread targets): their bodies do
    # not execute under the enclosing ``with``, so reset the held stack.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is self.info.node:
            self.generic_visit(node)
            return
        saved, self.held = self.held, []
        self.generic_visit(node)
        self.held = saved

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


class _ModuleScanner(ast.NodeVisitor):
    """Extract module-wide facts: raises, metrics, events, threads, joins."""

    _METRIC_METHODS = {"counter", "gauge", "histogram"}

    def __init__(self, module: ModuleInfo):
        self.module = module
        self.function_stack: list[str] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.function_stack.append(node.name)
        self.generic_visit(node)
        self.function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is not None:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            name = dotted_name(target)
            if name is not None:
                self.module.raises.append(
                    RaiseSite(
                        exc_name=name,
                        line=node.lineno,
                        function=(
                            self.function_stack[-1] if self.function_stack else ""
                        ),
                    )
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func_name = dotted_name(node.func)
        leaf = func_name.split(".")[-1] if func_name else None

        metric_kind: Optional[str] = None
        if leaf in self._METRIC_METHODS and func_name != leaf:
            metric_kind = leaf  # registry method call: reg.counter("...")
        elif leaf is not None:
            # Wrapper helpers named after the kind they register
            # (``self._shadow_counter("serve_...", model)``) count as
            # registration sites too -- the literal lives at the call.
            for kind in self._METRIC_METHODS:
                if leaf.endswith(f"_{kind}"):
                    metric_kind = kind
                    break
        if (
            metric_kind is not None
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.module.metric_registrations.append(
                MetricRegistration(node.args[0].value, metric_kind, node.lineno)
            )

        if (
            leaf in ("emit", "_emit")
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.module.event_emissions.append(
                EventEmission(node.args[0].value, node.lineno)
            )

        if leaf == "Thread" and func_name in ("Thread", "threading.Thread"):
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            daemon: Optional[bool] = None
            if "daemon" in kwargs and isinstance(kwargs["daemon"], ast.Constant):
                daemon = bool(kwargs["daemon"].value)
            target_method: Optional[str] = None
            target = kwargs.get("target")
            if target is not None:
                target_name = dotted_name(target)
                if target_name is not None and target_name.startswith("self."):
                    tail = target_name.split(".", 1)[1]
                    if "." not in tail:
                        target_method = tail
            self.module.thread_creations.append(
                ThreadCreation(
                    line=node.lineno,
                    has_name="name" in kwargs,
                    daemon=daemon,
                    target_self_method=target_method,
                )
            )

        if leaf == "join" and isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value) or "<expr>"
            has_timeout = bool(node.args) or any(
                kw.arg == "timeout" for kw in node.keywords
            )
            self.module.join_calls.append(
                JoinCall(node.lineno, receiver, has_timeout)
            )

        self.generic_visit(node)


def _scan_class(module: ModuleInfo, node: ast.ClassDef) -> None:
    cls = ClassInfo(
        name=node.name,
        lineno=node.lineno,
        bases=tuple(filter(None, (dotted_name(b) for b in node.bases))),
    )
    module.classes[node.name] = cls
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = FunctionInfo(name=item.name, lineno=item.lineno, node=item)
            cls.methods[item.name] = info
            _FunctionScanner(info, cls).visit(item)
    # Thread entry points: target=self.<m> anywhere inside this class body.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name is not None and name.split(".")[-1] == "Thread":
                for kw in sub.keywords:
                    if kw.arg == "target":
                        target = dotted_name(kw.value)
                        if target is not None and target.startswith("self."):
                            tail = target.split(".", 1)[1]
                            if "." not in tail:
                                cls.thread_targets.add(tail)


def _module_level_imports(module: ModuleInfo, package: str) -> None:
    """Imports executed at import time (module/class body, not functions)."""

    def is_type_checking_guard(test: ast.expr) -> bool:
        # ``if TYPE_CHECKING:`` blocks never execute at import time; they
        # are the sanctioned way to break a typing-only cycle.
        return any(
            (isinstance(n, ast.Name) and n.id == "TYPE_CHECKING")
            or (isinstance(n, ast.Attribute) and n.attr == "TYPE_CHECKING")
            for n in ast.walk(test)
        )

    def walk(body: list[ast.stmt]) -> Iterator[ast.stmt]:
        for statement in body:
            yield statement
            if isinstance(statement, ast.If):
                if not is_type_checking_guard(statement.test):
                    yield from walk(statement.body)
                yield from walk(statement.orelse)
            elif isinstance(statement, ast.Try):
                for block in (statement.body, statement.orelse, statement.finalbody):
                    yield from walk(block)
                for handler in statement.handlers:
                    yield from walk(handler.body)
            elif isinstance(statement, ast.ClassDef):
                yield from walk(statement.body)

    for statement in walk(module.tree.body):
        if isinstance(statement, ast.Import):
            for alias in statement.names:
                if alias.name.split(".")[0] == package:
                    module.imports.append((alias.name, statement.lineno))
        elif isinstance(statement, ast.ImportFrom):
            if statement.level > 0:
                parts = module.name.split(".")
                # level 1 from a package __init__ means "this package";
                # from a plain module it means "the parent package".
                anchor = (
                    parts
                    if module.path.name == "__init__.py"
                    else parts[:-1]
                )
                cut = statement.level - 1
                base_parts = anchor[: len(anchor) - cut] if cut else anchor
                base = ".".join(base_parts)
                target = f"{base}.{statement.module}" if statement.module else base
            else:
                target = statement.module or ""
            if target.split(".")[0] == package:
                module.imports.append((target, statement.lineno))
                for alias in statement.names:
                    submodule = f"{target}.{alias.name}"
                    module.imports.append((submodule, statement.lineno))


def load_project(
    src_root: Path | str,
    package: str = "repro",
    repo_root: Path | str | None = None,
    exclude: tuple[str, ...] = (),
) -> Project:
    """Parse every module of ``package`` under ``src_root``.

    Parameters
    ----------
    src_root:
        Directory *containing* the package directory (e.g. ``src/``).
    package:
        Top-level package name to load (default ``repro``).
    repo_root:
        Repository root for documentation cross-references (README,
        ``scripts/``); finding paths are rendered relative to it when
        given.  Defaults to ``src_root``'s parent when that looks like a
        repo root, else ``src_root``.
    exclude:
        Dotted module names (exact or prefix + ``.``) to skip -- the
        analysis package itself is never excluded by default; pass
        ``("repro.analysis",)`` to self-exempt.
    """
    src_root = Path(src_root).resolve()
    package_dir = src_root / package
    if repo_root is None:
        candidate = src_root.parent
        repo_root = candidate if (candidate / "README.md").exists() else src_root
    repo_root = Path(repo_root).resolve()

    project = Project(package=package, src_root=src_root, repo_root=repo_root)

    for path in sorted(package_dir.rglob("*.py")):
        relative = path.relative_to(src_root)
        parts = list(relative.parts)
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts[-1] = parts[-1][: -len(".py")]
        name = ".".join(parts)
        if any(name == e or name.startswith(e + ".") for e in exclude):
            continue
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as error:  # pragma: no cover - tree must parse
            raise error
        try:
            rel_path = path.relative_to(repo_root).as_posix()
        except ValueError:  # path outside repo_root (fixture projects)
            rel_path = relative.as_posix()
        module = ModuleInfo(
            name=name, path=path, source=source, tree=tree, rel_path=rel_path
        )
        _scan_pragmas(module)
        _module_level_imports(module, package)
        _ModuleScanner(module).visit(tree)
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                _scan_class(module, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(name=node.name, lineno=node.lineno, node=node)
                _FunctionScanner(info, None).visit(node)
        project.modules[name] = module
    return project
