"""Concurrency rules: lock ordering, guarded shared state, thread hygiene.

These encode the three concurrency contracts the serve stack has already
paid to learn (the two-read ``hit_rate`` race, the leaked worker thread
at ``stop()``, the drain-before-evict ordering):

* **lock-order** -- within a class, the lock-acquisition graph built from
  ``with self.<lock>:`` nesting plus intra-class call edges must be
  acyclic, and a non-reentrant lock must never be (transitively)
  re-acquired while held,
* **unguarded-shared-state** -- an instance attribute a class mutates
  under its lock in one place must not also be mutated bare from both a
  thread entry point and a public method, and
* **thread-hygiene** -- every ``threading.Thread`` is named and daemon,
  and every ``join()`` passes a timeout (a worker wedged in C code
  otherwise hangs shutdown forever -- the PR 7 lesson as a lint).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.framework import Finding, Rule
from repro.analysis.loader import ClassInfo, ModuleInfo, Project


class LockOrderRule(Rule):
    """Cycles in a class's lock-acquisition graph are potential deadlocks."""

    name = "lock-order"
    description = (
        "per-class lock-acquisition graph (with-nesting + intra-class "
        "calls) must be acyclic; non-reentrant locks must not be "
        "re-acquired while held"
    )
    hazard = "two threads taking the same locks in opposite orders deadlock"

    def check(self, project: Project) -> Iterator[Finding]:
        for module, cls in project.iter_classes():
            if not cls.lock_attrs:
                continue
            yield from self._check_class(module, cls)

    def _check_class(
        self, module: ModuleInfo, cls: ClassInfo
    ) -> Iterator[Finding]:
        # Edge held -> acquired, annotated with one witness line.
        edges: dict[tuple[str, str], int] = {}
        for method in cls.methods.values():
            for acquire in method.acquires:
                if acquire.lock not in cls.lock_attrs:
                    continue
                for held in acquire.locks_held:
                    if held in cls.lock_attrs:
                        edges.setdefault((held, acquire.lock), acquire.line)
            for call in method.self_calls:
                if not call.locks_held:
                    continue
                for acquired in cls.transitive_acquires(call.method):
                    for held in call.locks_held:
                        if held in cls.lock_attrs:
                            edges.setdefault((held, acquired), call.line)

        # Self-edges: re-acquiring a non-reentrant lock while held is an
        # immediate deadlock, not just a potential one.
        for (held, acquired), line in sorted(edges.items(), key=lambda e: e[1]):
            if held == acquired and held not in cls.rlock_attrs:
                yield self.finding(
                    module.rel_path,
                    line,
                    f"{cls.name}: non-reentrant lock self.{held} may be "
                    "re-acquired while already held (direct nesting or via "
                    "an intra-class call) -- immediate deadlock",
                )

        # Cycles of length >= 2 among distinct locks.
        graph: dict[str, set[str]] = {}
        for (held, acquired) in edges:
            if held != acquired:
                graph.setdefault(held, set()).add(acquired)
        for cycle in _find_cycles(graph):
            witness = min(
                edges[(a, b)]
                for a, b in zip(cycle, cycle[1:] + cycle[:1])
                if (a, b) in edges
            )
            path = " -> ".join(f"self.{lock}" for lock in cycle + [cycle[0]])
            yield self.finding(
                module.rel_path,
                witness,
                f"{cls.name}: lock-order cycle {path} -- concurrent callers "
                "entering at different points can deadlock",
            )


def _find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """Elementary cycles, each reported once (rotated to its min node)."""
    cycles: set[tuple[str, ...]] = set()

    def walk(start: str, node: str, path: list[str], seen: set[str]) -> None:
        for successor in sorted(graph.get(node, ())):
            if successor == start:
                rotation = path.index(min(path))
                cycles.add(tuple(path[rotation:] + path[:rotation]))
            elif successor not in seen and successor > start:
                # Only explore nodes >= start so each cycle is found from
                # its smallest member exactly once.
                walk(start, successor, path + [successor], seen | {successor})

    for start in sorted(graph):
        walk(start, start, [start], {start})
    return [list(c) for c in sorted(cycles)]


class UnguardedSharedStateRule(Rule):
    """Lock-guarded attributes must not also be mutated bare cross-thread."""

    name = "unguarded-shared-state"
    description = (
        "an attribute a threaded class writes under its lock must not "
        "also be written without it from both the thread side and the "
        "public surface"
    )
    hazard = "torn/stale reads and lost updates between worker and callers"

    def check(self, project: Project) -> Iterator[Finding]:
        for module, cls in project.iter_classes():
            if not cls.lock_attrs:
                continue
            entry_points = cls.entry_points()
            if not entry_points:
                continue
            yield from self._check_class(module, cls, entry_points)

    def _check_class(
        self, module: ModuleInfo, cls: ClassInfo, entry_points: set[str]
    ) -> Iterator[Finding]:
        thread_side = cls.reachable_methods(entry_points)
        # Attributes the class itself treats as lock-guarded somewhere.
        guarded: set[str] = set()
        for method in cls.methods.values():
            if method.name == "__init__":
                continue
            for write in method.writes:
                if write.locks_held & cls.lock_attrs:
                    guarded.add(write.attr)
        if not guarded:
            return

        # Bare writes to guarded attrs, split by which side performs them.
        bare: dict[str, dict[str, tuple[str, int]]] = {}  # attr -> side -> loc
        for method in cls.methods.values():
            if method.name == "__init__":
                continue  # construction happens-before thread start
            side = "thread" if method.name in thread_side else (
                "public" if method.is_public else None
            )
            if side is None:
                continue
            for write in method.writes:
                if write.attr not in guarded:
                    continue
                if write.locks_held & cls.lock_attrs:
                    continue
                bare.setdefault(write.attr, {}).setdefault(
                    side, (method.name, write.line)
                )

        for attr in sorted(bare):
            sides = bare[attr]
            # Dangerous when the attribute is written bare on the thread
            # side while also being written (bare or locked) publicly, or
            # vice versa; require a bare write on at least one side and
            # any write on the other to keep precision high.
            written_publicly = "public" in sides or any(
                w.attr == attr
                for m in cls.methods.values()
                if m.is_public and m.name not in thread_side
                for w in m.writes
            )
            written_on_thread = "thread" in sides or any(
                w.attr == attr
                for name in thread_side
                if (m := cls.methods.get(name)) is not None
                for w in m.writes
            )
            if not (written_publicly and written_on_thread):
                continue
            side = "thread" if "thread" in sides else "public"
            method_name, line = sides[side]
            lock_names = ", ".join(
                f"self.{lock}" for lock in sorted(cls.lock_attrs)
            )
            yield self.finding(
                module.rel_path,
                line,
                f"{cls.name}.{attr} is written elsewhere under a lock but "
                f"mutated bare in {method_name}() on the {side} side "
                f"(owning lock candidates: {lock_names})",
            )


class ThreadHygieneRule(Rule):
    """Threads must be named daemons; joins must carry a timeout."""

    name = "thread-hygiene"
    description = (
        "threading.Thread(...) must pass name= and daemon=True; "
        ".join() must pass a timeout"
    )
    hazard = (
        "anonymous non-daemon threads and unbounded joins turn one wedged "
        "worker into a hung interpreter at shutdown"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            for creation in module.thread_creations:
                if not creation.has_name:
                    yield self.finding(
                        module.rel_path,
                        creation.line,
                        "threading.Thread(...) without name= -- unnamed "
                        "threads make leak reports and stack dumps unreadable",
                    )
                if creation.daemon is not True:
                    detail = (
                        "daemon=False" if creation.daemon is False else "no daemon="
                    )
                    yield self.finding(
                        module.rel_path,
                        creation.line,
                        f"threading.Thread(...) with {detail} -- a wedged "
                        "non-daemon worker blocks interpreter exit",
                    )
            for join in module.join_calls:
                if not join.has_timeout:
                    yield self.finding(
                        module.rel_path,
                        join.line,
                        f"{join.receiver}.join() without a timeout -- a "
                        "wedged thread hangs the caller forever; join with a "
                        "timeout and check is_alive()",
                    )
