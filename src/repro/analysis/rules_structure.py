"""Structural rules: error taxonomy, exact export surfaces, import cycles.

* **error-taxonomy** -- every exception the library raises on purpose
  derives from the :mod:`repro.errors` hierarchy, so API consumers can
  catch ``ReproError`` at a boundary and never be surprised by a bare
  ``ValueError`` escaping the serve path.  Protocol exceptions Python
  itself demands (``NotImplementedError``, ``AttributeError`` inside
  ``__getattr__``, ``StopIteration`` inside ``__next__``) are exempt.
* **export-surface** -- ``__all__`` lists are exact: every listed name is
  actually bound (directly, or via a module-level ``*_EXPORTS`` lazy
  table consumed by ``__getattr__``), and -- in package ``__init__``
  modules, whose whole job is re-export -- every public ``from ... import``
  binding, def and assignment appears in ``__all__``.
* **import-cycle** -- the module-level import graph among ``repro.*``
  modules is acyclic.  The lazy re-export shims in ``repro/__init__.py``
  make cycles easy to introduce silently: they work or break depending on
  which module happens to be imported first.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.framework import Finding, Rule
from repro.analysis.loader import ModuleInfo, Project

#: Names of every builtin exception class.
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)

#: Builtin exceptions that are part of Python protocols, allowed anywhere
#: or inside the dunder that defines the protocol.
_PROTOCOL_EXEMPT = {
    "NotImplementedError": None,  # abstract-method convention, any context
    "AttributeError": ("__getattr__", "__getattribute__", "__setattr__",
                       "__delattr__", "__dir__"),
    "StopIteration": ("__next__",),
    "StopAsyncIteration": ("__anext__",),
    "IndexError": ("__getitem__", "__setitem__", "__delitem__"),
    "KeyError": ("__getitem__", "__setitem__", "__delitem__"),
}


class ErrorTaxonomyRule(Rule):
    """Intentional raises must come from the ``repro.errors`` hierarchy."""

    name = "error-taxonomy"
    description = (
        "raise statements must use exceptions deriving from ReproError; "
        "builtin exceptions only where a Python protocol demands them"
    )
    hazard = (
        "a bare ValueError/KeyError escaping an API boundary bypasses "
        "every except ReproError handler downstream"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            for site in module.raises:
                leaf = site.exc_name.split(".")[-1]
                if leaf not in BUILTIN_EXCEPTIONS:
                    # Project/imported exception classes or re-raised bound
                    # names -- resolving those is the type checker's job.
                    continue
                exempt_contexts = _PROTOCOL_EXEMPT.get(leaf, ())
                if exempt_contexts is None:
                    continue
                if site.function in exempt_contexts:
                    continue
                yield self.finding(
                    module.rel_path,
                    site.line,
                    f"raises builtin {leaf} -- raise a subclass of "
                    "repro.errors.ReproError (e.g. ConfigurationError / "
                    "DataError) so API consumers can catch the hierarchy",
                )


def _module_bindings(
    tree: ast.Module, package: str
) -> tuple[set[str], dict[str, int], set[str]]:
    """(all bound names, re-export-style publics with lines, lazy keys).

    The re-export set holds names a package ``__init__`` presents as API:
    ``from ... import`` bindings originating *inside* the project package
    plus local defs/classes/assignments.  Imports from elsewhere (typing,
    stdlib, third-party) are plumbing, not API, and are exempt from the
    "missing from __all__" direction.
    """
    bound: set[str] = set()
    reexports: dict[str, int] = {}
    lazy_keys: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            in_package = node.level > 0 or (
                node.module is not None
                and node.module.split(".")[0] == package
            )
            for alias in node.names:
                binding = alias.asname or alias.name
                if binding == "*":
                    continue
                bound.add(binding)
                if in_package:
                    reexports.setdefault(binding, node.lineno)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
            reexports.setdefault(node.name, node.lineno)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
            reexports.setdefault(node.name, node.lineno)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
                    reexports.setdefault(target.id, node.lineno)
                    value = node.value
                    if target.id.endswith("_EXPORTS") and isinstance(
                        value, ast.Dict
                    ):
                        for key in value.keys:
                            if isinstance(key, ast.Constant) and isinstance(
                                key.value, str
                            ):
                                lazy_keys.add(key.value)
    return bound, reexports, lazy_keys


def _declared_all(tree: ast.Module) -> tuple[list[str], int] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        names = [
                            e.value
                            for e in node.value.elts
                            if isinstance(e, ast.Constant)
                            and isinstance(e.value, str)
                        ]
                        return names, node.lineno
    return None


class ExportSurfaceRule(Rule):
    """``__all__`` is exact: no phantom entries, no unexported publics."""

    name = "export-surface"
    description = (
        "__all__ entries must resolve to real bindings (or lazy-export "
        "keys); package __init__ public bindings must appear in __all__"
    )
    hazard = (
        "a phantom __all__ entry breaks `from pkg import *` and tab "
        "completion; an unlisted public name is an accidental API"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for module in project.modules.values():
            declared = _declared_all(module.tree)
            if declared is None:
                continue
            names, line = declared
            bound, reexports, lazy_keys = _module_bindings(
                module.tree, project.package
            )
            resolvable = bound | lazy_keys | {"__version__", "__doc__"}
            for name in names:
                if name not in resolvable:
                    yield self.finding(
                        module.rel_path,
                        line,
                        f"__all__ lists {name!r} but the module binds no "
                        "such name (and no lazy-export table provides it)",
                    )
            duplicates = {n for n in names if names.count(n) > 1}
            for name in sorted(duplicates):
                yield self.finding(
                    module.rel_path,
                    line,
                    f"__all__ lists {name!r} more than once",
                )
            if module.path.name == "__init__.py":
                listed = set(names)
                for name in sorted(reexports):
                    if name.startswith("_") or name in listed:
                        continue
                    yield self.finding(
                        module.rel_path,
                        reexports[name],
                        f"public binding {name!r} in a package __init__ is "
                        "missing from __all__ -- export it or prefix it "
                        "with an underscore",
                    )


class ImportCycleRule(Rule):
    """The module-level import graph among project modules is acyclic."""

    name = "import-cycle"
    description = (
        "no circular imports among repro.* modules (module/class level; "
        "function-local imports are lazy and exempt)"
    )
    hazard = (
        "cycles import cleanly or explode depending on entry order -- the "
        "lazy shims in repro/__init__ make them land silently"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        graph: dict[str, set[str]] = {name: set() for name in project.modules}
        witness: dict[tuple[str, str], int] = {}
        for name, module in project.modules.items():
            for target, line in module.imports:
                resolved = self._resolve(project, target)
                if resolved is not None and resolved != name:
                    graph[name].add(resolved)
                    witness.setdefault((name, resolved), line)

        for component in self._cycles(graph):
            members = set(component)
            lines = [
                witness[(a, b)]
                for (a, b) in witness
                if a in members and b in members
            ]
            first = component[0]
            module = project.modules[first]
            rendered = ", ".join(component)
            yield self.finding(
                module.rel_path,
                min(lines) if lines else 1,
                f"circular imports among: {rendered} -- whether this "
                "explodes depends on which module is imported first; break "
                "the cycle (move an import into a function or behind "
                "TYPE_CHECKING)",
            )

    @staticmethod
    def _resolve(project: Project, target: str) -> str | None:
        """Map an imported dotted name onto a project module, if any."""
        while target:
            if target in project.modules:
                return target
            if "." not in target:
                return None
            target = target.rsplit(".", 1)[0]
        return None

    @staticmethod
    def _cycles(graph: dict[str, set[str]]) -> list[list[str]]:
        """Strongly connected components of size > 1, as rotated cycles."""
        index_counter = [0]
        stack: list[str] = []
        lowlink: dict[str, int] = {}
        index: dict[str, int] = {}
        on_stack: set[str] = set()
        components: list[list[str]] = []

        def connect(node: str) -> None:
            worklist: list[tuple[str, Iterator[str]]] = [
                (node, iter(sorted(graph.get(node, ()))))
            ]
            index[node] = lowlink[node] = index_counter[0]
            index_counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            while worklist:
                current, successors = worklist[-1]
                advanced = False
                for successor in successors:
                    if successor not in index:
                        index[successor] = lowlink[successor] = index_counter[0]
                        index_counter[0] += 1
                        stack.append(successor)
                        on_stack.add(successor)
                        worklist.append(
                            (successor, iter(sorted(graph.get(successor, ()))))
                        )
                        advanced = True
                        break
                    if successor in on_stack:
                        lowlink[current] = min(
                            lowlink[current], index[successor]
                        )
                if advanced:
                    continue
                worklist.pop()
                if worklist:
                    parent = worklist[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[current])
                if lowlink[current] == index[current]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == current:
                            break
                    if len(component) > 1:
                        components.append(sorted(component))

        for node in sorted(graph):
            if node not in index:
                connect(node)
        return components
