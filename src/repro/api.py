"""The documented public surface of the model lifecycle.

The paper's workflow is train-offline / serve-from-BlockRAM: a map is
trained and labelled on a PC, frozen, and the frozen unit is what the FPGA
serves.  This facade packages that whole lifecycle behind five verbs, with
the immutable :class:`~repro.core.snapshot.ModelSnapshot` as the single
currency everything exchanges:

``train``
    Fit a bSOM (or cSOM) identifier on labelled binary signatures.
``save`` / ``load``
    Move snapshots to and from self-describing ``.npz`` archives (format
    v2: backend selection, weights version and update-rule config all
    round-trip; legacy v1 archives still load).
``serve``
    Stand up a :class:`~repro.serve.StreamingInferenceService` -- micro-
    batching, sharding, signature cache, in-flight dedup, telemetry --
    over one or more named snapshots.
``swap``
    Hot-reload a served model with zero dropped requests (the software
    "reflash": queued requests ride through and resolve on the map current
    at their micro-batch boundary).
``rollout``
    The guarded path to ``swap``: shadow-evaluate a candidate against live
    traffic, optionally canary a seeded fraction of requests, and let the
    rollout policy promote or demote it automatically -- with a bounded
    rollback ring of the versions it replaced.

End to end::

    from repro import api

    classifier = api.train(X, y, epochs=15, seed=0)
    api.save(classifier, "hall.npz")

    service = api.serve({"hall": api.load("hall.npz")})
    future = service.submit(signature, model="hall", stream_id="cam-0")
    print(future.result().label)

    better = api.train(X, y, epochs=50, seed=0)
    api.swap(service, "hall", api.snapshot(better))   # zero-drop hot-reload
    service.stop()

Everything here is a thin veneer: the underlying classes
(:class:`~repro.core.SomClassifier`, :class:`~repro.serve.ModelRegistry`,
:class:`~repro.serve.StreamingInferenceService`) remain public for callers
that need the knobs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Mapping, Optional, Union

import numpy as np

from repro._rng import SeedLike
from repro.core.bsom import BinarySom, BsomUpdateRule
from repro.core.classifier import SomClassifier
from repro.core.csom import KohonenSom
from repro.core.serialization import (
    PathLike,
    load_delta as _load_delta,
    load_snapshot,
    save_delta as _save_delta,
    save_model,
    snapshot_model,
)
from repro.core.snapshot import DeltaSnapshot, ModelSnapshot
from repro.core.som import SelfOrganisingMap
from repro.core.topology import NeighbourhoodSchedule, Topology
from repro.errors import ConfigurationError
from repro.obs import Observability
from repro.serve.registry import ModelRegistry, ModelSource
from repro.serve.service import ServiceConfig, StreamingInferenceService

#: What the serving entry points accept per model: a snapshot, a fitted
#: classifier, or a path to a saved archive.
ServeSource = Union[ModelSnapshot, SomClassifier, str, Path]

_SOM_KINDS = ("bsom", "csom")


def train(
    X: np.ndarray,
    y: np.ndarray,
    *,
    som: Union[str, SelfOrganisingMap] = "bsom",
    n_neurons: int = 40,
    epochs: int = 10,
    topology: Optional[Topology] = None,
    schedule: Optional[NeighbourhoodSchedule] = None,
    update_rule: Optional[BsomUpdateRule] = None,
    rejection_percentile: Optional[float] = None,
    rejection_margin: float = 1.0,
    backend=None,
    seed: SeedLike = None,
    shuffle: bool = True,
) -> SomClassifier:
    """Train an identifier on labelled binary signatures; return it fitted.

    The paper's recipe in one call: unsupervised SOM training, win-frequency
    node labelling, and (optionally) rejection-threshold calibration.

    Parameters
    ----------
    X, y:
        ``(n_samples, n_bits)`` binary signatures and their identity labels.
    som:
        ``"bsom"`` (the paper's tri-state map, default), ``"csom"`` (the
        Kohonen baseline), or an already-constructed
        :class:`~repro.core.som.SelfOrganisingMap` instance.
    n_neurons:
        Map size when ``som`` is a kind name (40 in the paper).
    epochs:
        Full training passes (Table I's "iterations").
    topology, schedule, update_rule:
        Map construction knobs, forwarded when ``som`` is a kind name
        (``update_rule`` is bSOM-only).
    rejection_percentile, rejection_margin:
        "Unknown" rejection calibration; ``None`` disables rejection.
    backend:
        Distance-backend selection (``"packed"``, ``"gemm"``, ``"auto"``,
        ...); carried into snapshots and restored on load.
    seed:
        Seed for weight initialisation and presentation order.
    shuffle:
        Re-shuffle the presentation order each epoch.
    """
    X = np.asarray(X)
    if isinstance(som, SelfOrganisingMap):
        if update_rule is not None or topology is not None or schedule is not None:
            raise ConfigurationError(
                "pass topology/schedule/update_rule when constructing the map, "
                "not alongside an already-built SOM instance"
            )
        map_instance = som
    elif som == "bsom":
        map_instance = BinarySom(
            n_neurons,
            X.shape[1],
            topology=topology,
            schedule=schedule,
            update_rule=update_rule,
            seed=seed,
        )
    elif som == "csom":
        if update_rule is not None:
            raise ConfigurationError("update_rule applies to the bSOM only")
        map_instance = KohonenSom(
            n_neurons, X.shape[1], topology=topology, schedule=schedule, seed=seed
        )
    else:
        raise ConfigurationError(
            f"som must be one of {_SOM_KINDS} or a SelfOrganisingMap instance, "
            f"got {som!r}"
        )
    classifier = SomClassifier(
        map_instance,
        rejection_percentile=rejection_percentile,
        rejection_margin=rejection_margin,
        backend=backend,
    )
    return classifier.fit(X, y, epochs=epochs, shuffle=shuffle, seed=seed)


def snapshot(
    model: Union[ModelSnapshot, SelfOrganisingMap, SomClassifier],
    *,
    metadata: Optional[Mapping[str, str]] = None,
) -> ModelSnapshot:
    """Freeze a live model into an immutable :class:`ModelSnapshot`.

    The snapshot is a deep, read-only copy: later training (e.g. the
    on-line learner) does not mutate it, so it is safe to hand to a serving
    registry or keep as a rollback point.
    """
    return snapshot_model(model, metadata=metadata)


def save(
    model: Union[ModelSnapshot, SelfOrganisingMap, SomClassifier],
    path: PathLike,
) -> Path:
    """Write a model or snapshot to ``path`` as a format-v2 ``.npz`` archive."""
    return save_model(model, path)


def load(path: PathLike) -> ModelSnapshot:
    """Read an archive (format v1 or v2) back as a :class:`ModelSnapshot`.

    The snapshot goes straight into :func:`serve` / :func:`swap`, or
    :meth:`~repro.core.snapshot.ModelSnapshot.to_classifier` materialises a
    live classifier for local use.

    Every archive write is crash-safe (temp file + fsync + atomic rename)
    and every array carries a CRC32 recorded at save time; a truncated or
    bit-flipped archive raises
    :class:`~repro.errors.SnapshotCorruptionError` here instead of ever
    reaching a registry.
    """
    return load_snapshot(path)


def save_delta(delta: DeltaSnapshot, path: PathLike) -> Path:
    """Write a row-level :class:`DeltaSnapshot` to a (crash-safe) archive.

    Deltas are what the on-line learner publishes between full snapshots
    (:class:`~repro.pipeline.OnlineLearner` with ``publish_every``): only
    the neuron rows the updates touched, plus a full-matrix checksum.
    """
    return _save_delta(delta, path)


def load_delta(path: PathLike) -> DeltaSnapshot:
    """Read a delta archive back; apply it with ``delta.apply(base)``.

    Materialisation is checksum-verified: applying a delta to the wrong
    base (or a corrupted delta) raises
    :class:`~repro.errors.SnapshotCorruptionError` rather than serving
    silently wrong weights.
    """
    return _load_delta(path)


def _coerce_source(source: ServeSource) -> ModelSource:
    if isinstance(source, (str, Path)):
        return load_snapshot(source)
    return source


def serve(
    models: Mapping[str, ServeSource],
    *,
    config: Optional[ServiceConfig] = None,
    registry: Optional[ModelRegistry] = None,
    obs: Optional[Observability] = None,
    start: bool = True,
) -> StreamingInferenceService:
    """Stand up a streaming service over named models and (by default) start it.

    Parameters
    ----------
    models:
        Mapping of registry name to a :class:`ModelSnapshot`, a fitted
        :class:`~repro.core.SomClassifier`, or a path to a saved archive.
    config:
        Service tuning knobs (:class:`~repro.serve.ServiceConfig`).  The
        resilience layer lives here too: ``default_deadline_s`` (shed
        requests whose latency budget expired), ``retry`` (jittered
        backoff for transient overload refusals), ``breaker``
        (per-(model, shard) circuit breakers with stale-cache
        degradation), ``supervisor`` (watchdog restarting dead/wedged
        worker shards; on by default) and ``fault_injector``
        (deterministic chaos testing; ``None`` in production).
    registry:
        Pre-built registry to serve from; built from ``config`` when
        omitted.
    obs:
        A shared :class:`~repro.obs.Observability` bundle (metric registry
        + tracer + event log); built from ``config.trace_sample_every``
        when omitted.  Retrieve a sampled request's trace with
        ``service.obs.trace(response.trace_id)``.
    start:
        Start the dispatcher and shard threads before returning (pass
        ``False`` to register only; the service also works as a context
        manager).
    """
    service = StreamingInferenceService(registry=registry, config=config, obs=obs)
    for name, source in models.items():
        service.register_model(name, _coerce_source(source))
    if start:
        service.start()
    return service


def swap(
    service: Union[StreamingInferenceService, ModelRegistry],
    name: str,
    model: ServeSource,
) -> SomClassifier:
    """Hot-reload served model ``name``; returns the classifier it replaced.

    Zero-drop by construction: shard queues are untouched and each worker
    flips to the new (operand-pre-warmed) model at a micro-batch boundary,
    so every request queued across the swap resolves successfully.  When
    ``service`` is a :class:`StreamingInferenceService`, its signature
    cache is invalidated and its swap/generation telemetry updated;  a bare
    :class:`ModelRegistry` is swapped directly.
    """
    source = _coerce_source(model)
    if isinstance(service, ModelRegistry):
        return service.swap(name, source)
    return service.swap_model(name, source)


def rollout(
    service: StreamingInferenceService,
    name: str,
    candidate: ServeSource,
    *,
    config=None,
):
    """Begin a guarded rollout of ``candidate`` against served model ``name``.

    Enables the service's :class:`~repro.serve.RolloutManager` (idempotent)
    and starts the candidate in the shadow stage: it mirrors live traffic
    without affecting responses, accumulating agreement/latency statistics,
    and is automatically promoted -- optionally through a seeded canary
    traffic split -- or demoted by the configured
    :class:`~repro.serve.RolloutPolicy`.  Returns the manager, whose
    ``status(name)`` / ``promote`` / ``demote`` / ``rollback`` drive the
    rest of the lifecycle by hand when automatic guarding is off.
    """
    manager = service.enable_rollouts(config)
    manager.begin(name, _coerce_source(candidate))
    return manager


__all__ = [
    "DeltaSnapshot",
    "ModelSnapshot",
    "Observability",
    "ServeSource",
    "train",
    "snapshot",
    "save",
    "load",
    "save_delta",
    "load_delta",
    "serve",
    "swap",
    "rollout",
]
