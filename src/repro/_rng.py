"""Random-number-generator plumbing shared across the library.

All stochastic components in :mod:`repro` (weight initialisation, the
synthetic video generator, dataset shuffling...) accept a ``seed`` argument
that may be ``None``, an integer, or an already constructed
:class:`numpy.random.Generator`.  This module centralises the conversion so
that every component normalises seeds identically and experiments are
reproducible end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces an unpredictable generator, an ``int`` (or
    ``SeedSequence``) produces a deterministic one, and an existing
    ``Generator`` is returned unchanged so that callers can thread a single
    generator through a pipeline of components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Used by experiment runners that repeat a measurement several times: each
    repetition gets its own stream so that repetitions are independent yet
    the whole experiment is reproducible from one seed.
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
