"""Reduce metric snapshots to per-phase windowed stats -- no new schema.

The aggregation input is exactly what the runner (or any ``--metrics-out``
JSONL file) already produces: N+1 :func:`~repro.obs.export.metrics_record`
snapshots bracketing N phases.  :func:`~repro.obs.export.windowed_deltas`
diffs them, and this module projects the deltas onto the *existing*
observability vocabulary -- ``serve_request_latency_seconds`` (windowed
p50/p99/p999), ``serve_requests_total`` / ``serve_responses_total``
(throughput), ``serve_batch_fill_fraction_sum`` / ``serve_batches_total``
(batch fill), ``serve_backpressure_rejections_total`` +
``serve_deadline_exceeded_total`` (shed), ``serve_dedup_hits_total``,
``serve_cache_hits_total``, ``serve_model_swaps_total``, and the
``serve_shard_queue_depth{shard}`` gauges.  Nothing here registers or
invents a metric name; ``BENCH_serve.json`` is a projection of the
registry, not a parallel schema.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import DataError
from repro.obs.export import read_jsonl, windowed_deltas
from repro.loadgen.runner import RunResult

LATENCY = "serve_request_latency_seconds"
REQUESTS = "serve_requests_total"
RESPONSES = "serve_responses_total"
BATCHES = "serve_batches_total"
BATCH_FILL_SUM = "serve_batch_fill_fraction_sum"
BACKPRESSURE = "serve_backpressure_rejections_total"
DEADLINE = "serve_deadline_exceeded_total"
DEDUP = "serve_dedup_hits_total"
CACHE_HITS = "serve_cache_hits_total"
SWAPS = "serve_model_swaps_total"
QUEUE_DEPTH = "serve_shard_queue_depth"


def _phase_entry(record: dict[str, Any], delta: dict[str, Any]) -> dict[str, Any]:
    wall_s = float(record.get("wall_s") or 0.0)
    latency = delta.get(LATENCY) or {}
    requests = int(delta.get(REQUESTS, 0))
    responses = int(delta.get(RESPONSES, 0))
    batches = int(delta.get(BATCHES, 0))
    fill_sum = float(delta.get(BATCH_FILL_SUM, 0.0))
    shed = int(delta.get(BACKPRESSURE, 0)) + int(delta.get(DEADLINE, 0))
    queue_depth = {
        key[len(QUEUE_DEPTH) + 1 : -1]: value
        for key, value in delta.items()
        if key.startswith(QUEUE_DEPTH + "{")
    }
    return {
        "phase": record.get("phase"),
        "wall_s": round(wall_s, 6),
        "requests": requests,
        "responses": responses,
        "throughput_rps": round(responses / wall_s, 3) if wall_s > 0 else 0.0,
        "latency_ms": {
            "p50": round(float(latency.get("p50", 0.0)) * 1e3, 4),
            "p99": round(float(latency.get("p99", 0.0)) * 1e3, 4),
            "p999": round(float(latency.get("p999", 0.0)) * 1e3, 4),
        },
        "latency_observations": int(latency.get("count", 0)),
        "batches": batches,
        "batch_fill": round(fill_sum / batches, 4) if batches else 0.0,
        "shed": shed,
        "shed_rate": (
            round(shed / (requests + shed), 6) if (requests + shed) else 0.0
        ),
        "dedup_hits": int(delta.get(DEDUP, 0)),
        "cache_hits": int(delta.get(CACHE_HITS, 0)),
        "model_swaps": int(delta.get(SWAPS, 0)),
        "queue_depth": queue_depth,
    }


def aggregate_records(records: list[dict[str, Any]]) -> dict[str, Any]:
    """N+1 snapshot records -> ``{"phases": [<per-window stats>...]}``.

    ``records`` must be ordered; the first is the pre-run baseline, each
    subsequent one closes a phase window (its ``phase`` / ``wall_s``
    extras, when present, label the window).
    """
    if len(records) < 2:
        raise DataError(
            f"need at least two snapshots to aggregate, got {len(records)}"
        )
    deltas = windowed_deltas(records)
    return {
        "phases": [
            _phase_entry(record, delta)
            for record, delta in zip(records[1:], deltas)
        ]
    }


def aggregate_jsonl(path) -> dict[str, Any]:
    """Aggregate a JSONL snapshot file written by ``JsonlExporter``."""
    return aggregate_records(read_jsonl(path))


def aggregate_run(run: RunResult) -> dict[str, Any]:
    """Merge registry windows with the runner's client-side accounting.

    Registry deltas say what the *service* saw (latency distribution,
    batch fill, sheds); the runner's :class:`~repro.loadgen.runner.PhaseResult`
    says what the *client* saw (offered vs answered vs unresolved,
    lifecycle actions performed).  One entry per phase carries both, plus
    run-level totals and the zero-drop verdict.
    """
    aggregated = aggregate_records(run.records)
    phases = aggregated["phases"]
    if len(phases) != len(run.phases):
        raise DataError(
            f"snapshot windows ({len(phases)}) do not match executed "
            f"phases ({len(run.phases)})"
        )
    for entry, result in zip(phases, run.phases):
        entry["client"] = result.to_dict()
    totals = {
        "offered": sum(p.offered for p in run.phases),
        "answered": sum(p.answered for p in run.phases),
        "shed": sum(p.shed for p in run.phases),
        "failed": sum(p.failed for p in run.phases),
        "unresolved": run.unresolved,
        "swaps": sum(p.swaps for p in run.phases),
        "evictions": sum(p.evictions for p in run.phases),
        "rollouts": sum(p.rollouts for p in run.phases),
        "zero_drop": run.zero_drop,
    }
    return {
        "spec": run.spec.name,
        "model": run.model,
        "seed": run.spec.seed,
        "n_streams": run.spec.n_streams,
        "phases": phases,
        "totals": totals,
    }


def phase_named(aggregate: dict[str, Any], name: str) -> Optional[dict[str, Any]]:
    """The phase entry called ``name``, or None."""
    for entry in aggregate.get("phases", []):
        if entry.get("phase") == name:
            return entry
    return None
