"""Workload specs: phased load shapes with lifecycle churn baked in.

A :class:`WorkloadSpec` is the declarative unit the harness runs and the
benchmark commits: an ordered tuple of :class:`Phase` entries (warmup ->
steady -> burst -> soak), each owning an arrival process and, for soak
phases, counts of lifecycle actions (hot-swaps, evictions, rollout
promote/demote cycles) to fire mid-load.

:func:`build_schedule` lowers a spec to concrete per-phase arrays --
submit offsets, Zipf key indices, simulated-stream assignments, and
lifecycle action offsets.  Determinism: one ``numpy.random.SeedSequence``
rooted at ``spec.seed`` is spawned into independent child streams per
phase, and each phase spawns separate children for arrivals, keys, and
stream assignment.  Consuming more randomness in one phase (or one
purpose) therefore never shifts another's draws, and the same seed
reproduces the schedule bit-for-bit.

Streams here are *simulated* camera identities stamped on requests as
``stream_id`` strings -- hundreds to thousands of them cost nothing,
because the runner schedules submits on a small thread pool rather than
one thread per stream (``repro.serve.streams`` remains the closed-loop,
thread-per-stream client).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.loadgen.arrivals import (
    ArrivalProcess,
    BurstTrain,
    ConstantRate,
    PoissonProcess,
    ZipfKeySampler,
)

#: Lifecycle action kinds a soak phase can schedule.
ACTION_SWAP = "swap"
ACTION_EVICT = "evict"
ACTION_ROLLOUT = "rollout"


@dataclass(frozen=True)
class Phase:
    """One contiguous load segment: a name, a duration, an arrival shape.

    ``hot_swaps`` / ``evictions`` / ``rollouts`` schedule that many
    lifecycle actions at evenly spaced offsets inside the phase (a soak
    phase proves the zero-drop contract *while* models churn).
    """

    name: str
    duration_s: float
    arrival: ArrivalProcess
    hot_swaps: int = 0
    evictions: int = 0
    rollouts: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be a non-empty string")
        if not self.duration_s > 0:
            raise ConfigurationError(
                f"phase {self.name!r} duration must be positive, "
                f"got {self.duration_s!r}"
            )
        if not isinstance(self.arrival, ArrivalProcess):
            raise ConfigurationError(
                f"phase {self.name!r} arrival must be an ArrivalProcess, "
                f"got {type(self.arrival).__name__}"
            )
        for label, count in (
            ("hot_swaps", self.hot_swaps),
            ("evictions", self.evictions),
            ("rollouts", self.rollouts),
        ):
            if count < 0:
                raise ConfigurationError(
                    f"phase {self.name!r} {label} must be >= 0, got {count!r}"
                )

    @property
    def lifecycle_actions(self) -> int:
        return self.hot_swaps + self.evictions + self.rollouts

    def action_offsets(self) -> tuple[tuple[float, str], ...]:
        """Deterministic (offset_s, kind) pairs, evenly spaced, sorted."""
        actions: list[tuple[float, str]] = []
        for kind, count in (
            (ACTION_SWAP, self.hot_swaps),
            (ACTION_EVICT, self.evictions),
            (ACTION_ROLLOUT, self.rollouts),
        ):
            for k in range(count):
                offset = self.duration_s * (k + 1) / (count + 1)
                actions.append((offset, kind))
        actions.sort(key=lambda pair: (pair[0], pair[1]))
        return tuple(actions)


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, seeded sequence of phases plus the traffic population."""

    name: str
    phases: tuple[Phase, ...]
    n_streams: int = 8
    zipf_exponent: float = 1.1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("workload name must be a non-empty string")
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ConfigurationError(
                f"workload {self.name!r} must declare at least one phase"
            )
        names = [phase.name for phase in self.phases]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"workload {self.name!r} phase names must be unique, got {names}"
            )
        if not self.n_streams > 0:
            raise ConfigurationError(
                f"n_streams must be positive, got {self.n_streams!r}"
            )

    @property
    def duration_s(self) -> float:
        return sum(phase.duration_s for phase in self.phases)

    @property
    def lifecycle_actions(self) -> int:
        return sum(phase.lifecycle_actions for phase in self.phases)


@dataclass(frozen=True)
class PhaseSchedule:
    """A phase lowered to concrete arrays the runner replays."""

    phase: Phase
    offsets_s: np.ndarray = field(repr=False)
    key_indices: np.ndarray = field(repr=False)
    stream_indices: np.ndarray = field(repr=False)
    actions: tuple[tuple[float, str], ...] = ()

    @property
    def n_events(self) -> int:
        return int(self.offsets_s.size)


def build_schedule(spec: WorkloadSpec, pool_size: int) -> list[PhaseSchedule]:
    """Lower ``spec`` to per-phase submit schedules over a signature pool.

    ``pool_size`` is the number of distinct signatures available;
    ``key_indices`` index into that pool with the spec's Zipf skew.
    Bit-identical output for identical ``(spec, pool_size)``.
    """
    if not pool_size > 0:
        raise ConfigurationError(
            f"pool_size must be a positive int, got {pool_size!r}"
        )
    root = np.random.SeedSequence(spec.seed)
    schedules: list[PhaseSchedule] = []
    for phase, child in zip(spec.phases, root.spawn(len(spec.phases))):
        arrival_seq, key_seq, stream_seq = child.spawn(3)
        offsets = np.sort(
            phase.arrival.times(phase.duration_s, np.random.default_rng(arrival_seq))
        )
        sampler = ZipfKeySampler(
            pool_size,
            spec.zipf_exponent,
            seed=np.random.default_rng(key_seq),
        )
        keys = sampler.draw(offsets.size)
        stream_rng = np.random.default_rng(stream_seq)
        streams = stream_rng.integers(0, spec.n_streams, size=offsets.size)
        schedules.append(
            PhaseSchedule(
                phase=phase,
                offsets_s=offsets,
                key_indices=keys,
                stream_indices=streams.astype(np.int64),
                actions=phase.action_offsets(),
            )
        )
    return schedules


def built_in_specs() -> dict[str, "WorkloadSpec"]:
    """Small named specs for demos and smoke tests.

    * ``demo`` -- warmup then a saturating burst train with one mid-load
      hot-swap (the ``examples/streaming_service.py --load demo`` shape).
    * ``smoke`` -- one short steady phase, for fast tests.
    """
    return {
        "demo": WorkloadSpec(
            name="demo",
            n_streams=64,
            zipf_exponent=1.2,
            seed=2026,
            phases=(
                Phase("warmup", duration_s=0.4, arrival=ConstantRate(200.0)),
                Phase(
                    "burst",
                    duration_s=0.9,
                    arrival=BurstTrain(
                        base_rate_hz=200.0,
                        burst_rate_hz=1500.0,
                        period_s=0.3,
                        burst_fraction=0.4,
                    ),
                    hot_swaps=1,
                ),
            ),
        ),
        "smoke": WorkloadSpec(
            name="smoke",
            n_streams=8,
            seed=7,
            phases=(
                Phase("steady", duration_s=0.3, arrival=PoissonProcess(200.0)),
            ),
        ),
    }
