"""Human-readable rendering of an aggregated load run."""

from __future__ import annotations

from typing import Any

from repro.errors import DataError

_COLUMNS = (
    ("phase", 8),
    ("wall s", 7),
    ("offered", 8),
    ("answered", 9),
    ("rps", 8),
    ("p50 ms", 8),
    ("p99 ms", 8),
    ("p999 ms", 8),
    ("fill", 6),
    ("shed%", 7),
    ("dedup", 6),
    ("churn", 12),
)


def _row(cells: list[str]) -> str:
    return "  ".join(
        str(cell).rjust(width) if index else str(cell).ljust(width)
        for index, ((_, width), cell) in enumerate(zip(_COLUMNS, cells))
    )


def render_report(aggregate: dict[str, Any]) -> str:
    """Render :func:`~repro.loadgen.aggregate.aggregate_run` output as text.

    One table row per phase (service-side windowed stats merged with the
    client-side accounting when present), a totals line, and the
    zero-drop verdict.
    """
    phases = aggregate.get("phases")
    if not phases:
        raise DataError("aggregate has no phases to report")
    lines = []
    title = aggregate.get("spec", "run")
    model = aggregate.get("model")
    header = f"load report: spec={title}"
    if model:
        header += f" model={model}"
    if "seed" in aggregate:
        header += f" seed={aggregate['seed']}"
    if "n_streams" in aggregate:
        header += f" streams={aggregate['n_streams']}"
    lines.append(header)
    lines.append(_row([name for name, _ in _COLUMNS]))
    for entry in phases:
        client = entry.get("client", {})
        latency = entry.get("latency_ms", {})
        churn_parts = []
        for key, tag in (("swaps", "sw"), ("evictions", "ev"), ("rollouts", "ro")):
            count = client.get(key, 0)
            if count:
                churn_parts.append(f"{count}{tag}")
        lines.append(
            _row(
                [
                    str(entry.get("phase")),
                    f"{entry.get('wall_s', 0.0):.2f}",
                    str(client.get("offered", entry.get("requests", 0))),
                    str(client.get("answered", entry.get("responses", 0))),
                    f"{entry.get('throughput_rps', 0.0):.0f}",
                    f"{latency.get('p50', 0.0):.2f}",
                    f"{latency.get('p99', 0.0):.2f}",
                    f"{latency.get('p999', 0.0):.2f}",
                    f"{entry.get('batch_fill', 0.0):.2f}",
                    f"{100.0 * entry.get('shed_rate', 0.0):.1f}",
                    str(entry.get("dedup_hits", 0)),
                    " ".join(churn_parts) or "-",
                ]
            )
        )
    totals = aggregate.get("totals")
    if totals:
        lines.append(
            "totals: offered={offered} answered={answered} shed={shed} "
            "failed={failed} unresolved={unresolved} swaps={swaps} "
            "evictions={evictions} rollouts={rollouts}".format(**totals)
        )
        if totals.get("zero_drop", totals.get("unresolved", 1) == 0):
            lines.append("zero-drop: OK (every submitted future went terminal)")
        else:
            lines.append(
                f"zero-drop: VIOLATED ({totals.get('unresolved')} futures "
                "never resolved)"
            )
    return "\n".join(lines)
