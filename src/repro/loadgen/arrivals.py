"""Seeded arrival processes and the Zipf hot-key sampler.

The load harness is *open loop*: a phase's submit schedule is drawn up
front as an array of offsets from phase start, then replayed against the
service regardless of how fast responses come back.  Every process here
is a pure function of the :class:`numpy.random.Generator` it is handed --
same generator state, bit-identical schedule -- so a committed benchmark
spec replays exactly and CI failures are diffable.  No process touches
process-global RNG state (`repro.analysis` bans it repo-wide).

Rates are events per second; offsets are float seconds in
``[0, duration_s)``, sorted ascending.

:class:`ZipfKeySampler` skews which pool signatures the schedule submits
(rank-frequency ``1/rank**s``), which is what exercises the serve layer's
in-flight dedup and LRU-cache paths under load: a handful of hot keys
dominate while the long tail forces evictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError


def _check_duration(duration_s: float) -> float:
    if not duration_s > 0:
        raise ConfigurationError(
            f"phase duration must be positive seconds, got {duration_s!r}"
        )
    return float(duration_s)


def _check_rate(rate_hz: float, what: str = "rate_hz") -> float:
    if not rate_hz >= 0:
        raise ConfigurationError(f"{what} must be >= 0 events/s, got {rate_hz!r}")
    return float(rate_hz)


def _poisson_times(
    rate_hz: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Homogeneous Poisson arrivals: exponential gaps, cumulative sum."""
    if rate_hz <= 0 or duration_s <= 0:
        return np.empty(0, dtype=np.float64)
    chunk = max(int(rate_hz * duration_s * 1.5) + 16, 16)
    times = np.cumsum(rng.exponential(1.0 / rate_hz, size=chunk))
    while times[-1] < duration_s:
        extra = np.cumsum(rng.exponential(1.0 / rate_hz, size=chunk)) + times[-1]
        times = np.concatenate([times, extra])
    return times[times < duration_s]


class ArrivalProcess:
    """A seeded recipe for one phase's submit offsets.

    Subclasses implement :meth:`times`: given a duration and a
    generator, return sorted offsets (seconds from phase start) in
    ``[0, duration_s)``.  Determinism contract: equal generator state in,
    bit-identical offsets out.  :meth:`mean_rate_hz` is the expected
    long-run rate, used for reporting only.
    """

    def times(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def mean_rate_hz(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantRate(ArrivalProcess):
    """Evenly spaced arrivals at ``rate_hz`` -- the warmup/steady floor."""

    rate_hz: float

    def __post_init__(self) -> None:
        _check_rate(self.rate_hz)

    def times(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = _check_duration(duration_s)
        n = int(self.rate_hz * duration_s)
        return np.arange(n, dtype=np.float64) / self.rate_hz if n else np.empty(0)

    def mean_rate_hz(self) -> float:
        return self.rate_hz


@dataclass(frozen=True)
class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals at ``rate_hz`` -- independent camera check-ins."""

    rate_hz: float

    def __post_init__(self) -> None:
        _check_rate(self.rate_hz)

    def times(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        return _poisson_times(self.rate_hz, _check_duration(duration_s), rng)

    def mean_rate_hz(self) -> float:
        return self.rate_hz


@dataclass(frozen=True)
class BurstTrain(ArrivalProcess):
    """Periodic saturation bursts over a Poisson floor.

    Each ``period_s`` window opens with a burst segment lasting
    ``burst_fraction`` of the period at ``burst_rate_hz``, then relaxes
    to ``base_rate_hz`` for the remainder -- a fleet of cameras tripping
    on the same event, then going quiet.
    """

    base_rate_hz: float
    burst_rate_hz: float
    period_s: float
    burst_fraction: float = 0.25

    def __post_init__(self) -> None:
        _check_rate(self.base_rate_hz, "base_rate_hz")
        _check_rate(self.burst_rate_hz, "burst_rate_hz")
        if not self.period_s > 0:
            raise ConfigurationError(
                f"period_s must be positive, got {self.period_s!r}"
            )
        if not 0.0 < self.burst_fraction < 1.0:
            raise ConfigurationError(
                f"burst_fraction must lie in (0, 1), got {self.burst_fraction!r}"
            )

    def times(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = _check_duration(duration_s)
        segments = []
        start = 0.0
        burst_len = self.period_s * self.burst_fraction
        quiet_len = self.period_s - burst_len
        while start < duration_s:
            for rate, seg_len in (
                (self.burst_rate_hz, burst_len),
                (self.base_rate_hz, quiet_len),
            ):
                end = min(start + seg_len, duration_s)
                if end > start:
                    seg = _poisson_times(rate, end - start, rng)
                    if seg.size:
                        segments.append(seg + start)
                start = end
                if start >= duration_s:
                    break
        if not segments:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(segments)

    def mean_rate_hz(self) -> float:
        f = self.burst_fraction
        return f * self.burst_rate_hz + (1.0 - f) * self.base_rate_hz


@dataclass(frozen=True)
class DiurnalRamp(ArrivalProcess):
    """Sinusoidal day/night ramp between ``low_rate_hz`` and ``high_rate_hz``.

    An inhomogeneous Poisson process sampled by thinning: candidates are
    drawn at the peak rate and accepted with probability
    ``rate(t) / high_rate_hz`` where the instantaneous rate starts at the
    low point, peaks mid-``period_s``, and returns -- one compressed
    "day" per period.  The natural soak-phase shape.
    """

    low_rate_hz: float
    high_rate_hz: float
    period_s: float

    def __post_init__(self) -> None:
        _check_rate(self.low_rate_hz, "low_rate_hz")
        _check_rate(self.high_rate_hz, "high_rate_hz")
        if self.high_rate_hz < self.low_rate_hz:
            raise ConfigurationError(
                "high_rate_hz must be >= low_rate_hz, got "
                f"{self.high_rate_hz!r} < {self.low_rate_hz!r}"
            )
        if not self.period_s > 0:
            raise ConfigurationError(
                f"period_s must be positive, got {self.period_s!r}"
            )

    def rate_at(self, t: np.ndarray) -> np.ndarray:
        swing = 0.5 - 0.5 * np.cos(2.0 * np.pi * np.asarray(t) / self.period_s)
        return self.low_rate_hz + (self.high_rate_hz - self.low_rate_hz) * swing

    def times(self, duration_s: float, rng: np.random.Generator) -> np.ndarray:
        duration_s = _check_duration(duration_s)
        if self.high_rate_hz <= 0:
            return np.empty(0, dtype=np.float64)
        candidates = _poisson_times(self.high_rate_hz, duration_s, rng)
        if not candidates.size:
            return candidates
        accept = rng.random(candidates.size) < (
            self.rate_at(candidates) / self.high_rate_hz
        )
        return candidates[accept]

    def mean_rate_hz(self) -> float:
        return 0.5 * (self.low_rate_hz + self.high_rate_hz)


class ZipfKeySampler:
    """Zipf-skewed sampler over a finite signature pool.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``1 / r**exponent``; a seeded permutation maps ranks to pool indices
    so *which* keys are hot depends on the seed, not on pool ordering.
    Exponents slightly above 1.0 give the classic few-hot-keys skew that
    lights up the dedup and LRU-eviction paths.
    """

    def __init__(
        self,
        pool_size: int,
        exponent: float = 1.1,
        *,
        seed: SeedLike = None,
    ):
        if not pool_size > 0:
            raise ConfigurationError(
                f"pool_size must be a positive int, got {pool_size!r}"
            )
        if not exponent > 0:
            raise ConfigurationError(
                f"zipf exponent must be > 0, got {exponent!r}"
            )
        self.pool_size = int(pool_size)
        self.exponent = float(exponent)
        self._rng = as_generator(seed)
        ranks = np.arange(1, self.pool_size + 1, dtype=np.float64)
        pmf = ranks**-self.exponent
        self._pmf = pmf / pmf.sum()
        self._index_of_rank = self._rng.permutation(self.pool_size)

    def draw(self, n: int) -> np.ndarray:
        """Sample ``n`` pool indices; advances the sampler's own stream."""
        if n < 0:
            raise ConfigurationError(f"sample count must be >= 0, got {n!r}")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        ranks = self._rng.choice(self.pool_size, size=int(n), p=self._pmf)
        return self._index_of_rank[ranks].astype(np.int64)

    def hot_keys(self, k: int = 5) -> np.ndarray:
        """The ``k`` most probable pool indices, hottest first."""
        k = max(0, min(int(k), self.pool_size))
        return self._index_of_rank[:k].astype(np.int64)
