"""Open-loop workload runner against a live ``StreamingInferenceService``.

:func:`run_workload` replays a :class:`~repro.loadgen.workload.WorkloadSpec`
phase by phase.  Submits are scheduled by arrival time on a small pool of
named daemon threads (stride-partitioned so each worker's slice stays
time-ordered) -- the open-loop discipline: a slow service does not slow
the offered load down, it sheds or queues, which is exactly what the
benchmark wants to measure.  Events that fall behind schedule submit
immediately, so measured throughput reflects service capacity rather
than generator stalls.

Soak-phase lifecycle churn (hot-swaps, evictions, rollout promote/demote
cycles) runs on its own daemon thread at the schedule's deterministic
offsets, against the same service the load is hitting.

Accounting is exhaustive: every scheduled event ends in exactly one of
``answered`` / ``shed`` / ``failed`` / ``unresolved``, and ``unresolved``
(a future that never went terminal) is the zero-drop violation CI guards
at saturation.  Metric snapshots are taken before the first phase and
after each phase via the observability registry's consistent read path
(:func:`~repro.obs.export.metrics_record` under the hood, or a
:class:`~repro.obs.export.JsonlExporter` when one is supplied), giving
``aggregate.py`` its N+1 records for N per-phase windows.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import (
    ConfigurationError,
    DataError,
    DeadlineExceededError,
    ResultTimeoutError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.loadgen.workload import (
    ACTION_EVICT,
    ACTION_ROLLOUT,
    ACTION_SWAP,
    PhaseSchedule,
    WorkloadSpec,
    build_schedule,
)
from repro.obs.export import JsonlExporter, metrics_record


@dataclass
class PhaseResult:
    """Client-side accounting for one executed phase."""

    name: str
    planned_duration_s: float
    wall_s: float
    offered: int
    submitted: int
    answered: int = 0
    cached: int = 0
    deduplicated: int = 0
    shed: int = 0
    failed: int = 0
    unresolved: int = 0
    swaps: int = 0
    evictions: int = 0
    rollouts: int = 0
    victim_requests: int = 0

    @property
    def offered_rate_hz(self) -> float:
        return self.offered / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def throughput_rps(self) -> float:
        return self.answered / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.name,
            "planned_duration_s": round(self.planned_duration_s, 6),
            "wall_s": round(self.wall_s, 6),
            "offered": self.offered,
            "submitted": self.submitted,
            "answered": self.answered,
            "cached": self.cached,
            "deduplicated": self.deduplicated,
            "shed": self.shed,
            "failed": self.failed,
            "unresolved": self.unresolved,
            "swaps": self.swaps,
            "evictions": self.evictions,
            "rollouts": self.rollouts,
            "offered_rate_hz": round(self.offered_rate_hz, 3),
            "throughput_rps": round(self.throughput_rps, 3),
            "shed_rate": round(self.shed_rate, 6),
        }


@dataclass
class RunResult:
    """Everything one :func:`run_workload` call produced."""

    spec: WorkloadSpec
    model: str
    phases: list[PhaseResult] = field(default_factory=list)
    records: list[dict[str, Any]] = field(default_factory=list)

    @property
    def unresolved(self) -> int:
        return sum(phase.unresolved for phase in self.phases)

    @property
    def zero_drop(self) -> bool:
        """True when every future (including soak churn) went terminal."""
        return self.unresolved == 0


def _snapshot(
    service,
    exporter: Optional[JsonlExporter],
    clock: Callable[[], float],
    extra: dict[str, Any],
) -> dict[str, Any]:
    if exporter is not None:
        return exporter.export(
            service.obs.registry, events=service.obs.events, extra=extra
        )
    record: dict[str, Any] = {
        "ts": float(clock()),
        "metrics": metrics_record(service.obs.registry),
    }
    record.update(extra)
    return record


def _run_lifecycle(
    service,
    schedule: PhaseSchedule,
    model: str,
    swap_source: Callable[[], Any],
    signatures: np.ndarray,
    start_s: float,
    clock: Callable[[], float],
    result: PhaseResult,
    victim_futures: list,
    errors: list,
) -> None:
    """Fire the phase's swap/evict/rollout actions at their offsets.

    Any failure (service errors and broken swap_source callables alike)
    is collected into ``errors`` and re-raised by the phase runner after
    the drain -- a dead lifecycle thread must fail the run loudly, never
    leave it silently churn-free.
    """
    for offset, kind in schedule.actions:
        delay = start_s + offset - clock()
        if delay > 0:
            time.sleep(delay)
        try:
            if kind == ACTION_SWAP:
                service.swap_model(model, swap_source())
                result.swaps += 1
            elif kind == ACTION_EVICT:
                victim = f"{model}-victim-{result.evictions}"
                service.register_model(victim, swap_source())
                for row in signatures[:8]:
                    try:
                        victim_futures.append(
                            service.submit(row, model=victim)
                        )
                    except ServiceError:
                        result.victim_requests += 1  # refused pre-queue
                service.evict_model(victim)
                result.evictions += 1
            elif kind == ACTION_ROLLOUT:
                manager = service.enable_rollouts()
                manager.begin(model, swap_source())
                # Alternate the two exits so soak exercises both the
                # promote path (snapshot banked in the rollback ring) and
                # the demote path (drain then evict) under live load.
                if result.rollouts % 2 == 0:
                    manager.promote(model)
                else:
                    manager.demote(model, reason="loadgen-cycle")
                result.rollouts += 1
        except BaseException as exc:  # surfaced after the phase drains
            errors.append((kind, exc))


def _run_phase(
    service,
    schedule: PhaseSchedule,
    signatures: np.ndarray,
    model: str,
    swap_source: Optional[Callable[[], Any]],
    submit_workers: int,
    result_timeout_s: float,
    clock: Callable[[], float],
) -> PhaseResult:
    phase = schedule.phase
    n = schedule.n_events
    result = PhaseResult(
        name=phase.name,
        planned_duration_s=phase.duration_s,
        wall_s=0.0,
        offered=n,
        submitted=0,
    )
    futures: list = [None] * n
    offsets = schedule.offsets_s
    keys = schedule.key_indices
    streams = schedule.stream_indices
    worker_counts = [
        {"submitted": 0, "shed": 0, "failed": 0} for _ in range(submit_workers)
    ]
    start_s = clock()

    def submit_slice(w: int) -> None:
        counts = worker_counts[w]
        for i in range(w, n, submit_workers):
            delay = start_s + offsets[i] - clock()
            if delay > 0:
                time.sleep(delay)
            try:
                futures[i] = service.submit(
                    signatures[keys[i]],
                    model=model,
                    stream_id=f"cam-{streams[i]:04d}",
                )
                counts["submitted"] += 1
            except ServiceOverloadedError:
                counts["shed"] += 1  # open loop: no client retry
            except ServiceError:
                counts["failed"] += 1

    threads = [
        threading.Thread(
            target=submit_slice,
            args=(w,),
            name=f"loadgen-submit-{w}",
            daemon=True,
        )
        for w in range(submit_workers)
    ]
    victim_futures: list = []
    lifecycle_errors: list = []
    if schedule.actions:
        threads.append(
            threading.Thread(
                target=_run_lifecycle,
                args=(
                    service,
                    schedule,
                    model,
                    swap_source,
                    signatures,
                    start_s,
                    clock,
                    result,
                    victim_futures,
                    lifecycle_errors,
                ),
                name="loadgen-lifecycle",
                daemon=True,
            )
        )
    for thread in threads:
        thread.start()
    join_deadline = phase.duration_s + result_timeout_s
    for thread in threads:
        thread.join(timeout=join_deadline)
        if thread.is_alive():
            raise ResultTimeoutError(
                f"loadgen thread {thread.name!r} still running "
                f"{join_deadline:.1f}s after phase {phase.name!r} began"
            )
    for counts in worker_counts:
        result.submitted += counts["submitted"]
        result.shed += counts["shed"]
        result.failed += counts["failed"]
    # Wall clock covers the offered window (all submits + lifecycle
    # churn), not the post-hoc drain below -- throughput is answered
    # requests over the time load was actually offered.
    result.wall_s = max(clock() - start_s, 1e-9)

    # Drain: every admitted future must go terminal.  Anything that does
    # not is `unresolved` -- the zero-drop violation.
    for future in futures:
        if future is None:
            continue
        try:
            response = future.result(timeout=result_timeout_s)
        except ResultTimeoutError:
            result.unresolved += 1
            continue
        except (ServiceOverloadedError, DeadlineExceededError):
            result.shed += 1
            continue
        except ServiceError:
            result.failed += 1
            continue
        result.answered += 1
        if response.cached:
            result.cached += 1
        if response.deduplicated:
            result.deduplicated += 1
    for future in victim_futures:
        try:
            future.result(timeout=result_timeout_s)
        except ResultTimeoutError:
            result.unresolved += 1
            continue
        except ServiceError:
            pass  # ModelEvictedError et al: terminal, which is the contract
        result.victim_requests += 1
    if lifecycle_errors:
        kind, exc = lifecycle_errors[0]
        raise ServiceError(
            f"lifecycle action {kind!r} failed during phase "
            f"{phase.name!r}: {exc}"
        ) from exc
    return result


def run_workload(
    service,
    spec: WorkloadSpec,
    signatures: np.ndarray,
    *,
    model: str,
    swap_source: Optional[Callable[[], Any]] = None,
    exporter: Optional[JsonlExporter] = None,
    submit_workers: int = 4,
    result_timeout_s: float = 30.0,
    clock: Callable[[], float] = time.perf_counter,
) -> RunResult:
    """Replay ``spec`` against ``service``; returns accounting + snapshots.

    ``signatures`` is the 2-D signature pool (rows are what the Zipf
    sampler indexes).  ``swap_source`` is a zero-argument callable
    returning a registrable model (fitted classifier or snapshot); it is
    required whenever the spec schedules lifecycle actions -- swaps use
    it as the replacement, evictions register-and-evict a throwaway
    victim built from it, rollout cycles shadow it as the candidate.

    The service must already be started; the caller keeps ownership of
    its lifetime.  ``records`` holds ``len(phases) + 1`` metric
    snapshots (one before the first phase, one after each), each tagged
    with ``phase`` / ``wall_s`` / ``submitted`` extras -- the direct
    input to :func:`repro.loadgen.aggregate.aggregate_run`.
    """
    signatures = np.asarray(signatures)
    if signatures.ndim != 2 or signatures.shape[0] == 0:
        raise DataError(
            "signature pool must be a non-empty 2-D array, got shape "
            f"{signatures.shape}"
        )
    if submit_workers < 1:
        raise ConfigurationError(
            f"submit_workers must be >= 1, got {submit_workers!r}"
        )
    if spec.lifecycle_actions and swap_source is None:
        raise ConfigurationError(
            f"workload {spec.name!r} schedules lifecycle actions; "
            "run_workload needs swap_source= to supply replacement models"
        )
    schedules = build_schedule(spec, pool_size=signatures.shape[0])
    run = RunResult(spec=spec, model=model)
    run.records.append(_snapshot(service, exporter, clock, {"phase": None}))
    for schedule in schedules:
        phase_result = _run_phase(
            service,
            schedule,
            signatures,
            model,
            swap_source,
            submit_workers,
            result_timeout_s,
            clock,
        )
        run.phases.append(phase_result)
        run.records.append(
            _snapshot(
                service,
                exporter,
                clock,
                {
                    "phase": phase_result.name,
                    "wall_s": phase_result.wall_s,
                    "submitted": phase_result.submitted,
                },
            )
        )
    return run
