"""Fleet-scale load harness: open-loop generation, aggregation, reporting.

The serving system's benchmark rig.  A :class:`WorkloadSpec` describes
phased traffic (warmup -> steady -> burst -> soak) from hundreds to
thousands of simulated camera streams; :func:`run_workload` replays it
open-loop against a live :class:`~repro.serve.StreamingInferenceService`
on a small thread pool, driving hot-swaps, evictions and rollout cycles
mid-load during soak; :func:`aggregate_run` reduces the per-phase metric
snapshots to windowed deltas on the existing observability vocabulary;
:func:`render_report` prints the result.  ``benchmarks/test_serve_load.py``
commits the aggregate as ``BENCH_serve.json`` and
``scripts/check_serve.py`` guards it in CI::

    from repro import api
    from repro.loadgen import built_in_specs, run_workload, aggregate_run

    service = api.serve({"hall": snapshot})
    run = aggregate_run(
        run_workload(service, built_in_specs()["demo"], pool,
                     model="hall", swap_source=lambda: snapshot)
    )

Everything is seeded and deterministic on the generation side (schedules
replay bit-for-bit); wall-clock variation enters only through the
service under test.
"""

from repro.loadgen.arrivals import (
    ArrivalProcess,
    BurstTrain,
    ConstantRate,
    DiurnalRamp,
    PoissonProcess,
    ZipfKeySampler,
)
from repro.loadgen.workload import (
    Phase,
    PhaseSchedule,
    WorkloadSpec,
    build_schedule,
    built_in_specs,
)
from repro.loadgen.runner import PhaseResult, RunResult, run_workload
from repro.loadgen.aggregate import (
    aggregate_jsonl,
    aggregate_records,
    aggregate_run,
    phase_named,
)
from repro.loadgen.report import render_report

__all__ = [
    "ArrivalProcess",
    "ConstantRate",
    "PoissonProcess",
    "BurstTrain",
    "DiurnalRamp",
    "ZipfKeySampler",
    "Phase",
    "PhaseSchedule",
    "WorkloadSpec",
    "build_schedule",
    "built_in_specs",
    "PhaseResult",
    "RunResult",
    "run_workload",
    "aggregate_records",
    "aggregate_run",
    "aggregate_jsonl",
    "phase_named",
    "render_report",
]
