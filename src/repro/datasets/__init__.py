"""Dataset construction: paper-scale surveillance signatures and toy clusters.

The paper trains on 2,248 binary signatures and tests on 1,139, extracted
from nine people recorded over two hours.  :func:`make_surveillance_dataset`
rebuilds a dataset with the same structure from the synthetic scene in
:mod:`repro.vision.synthetic`, passing every silhouette through the same
histogram/binarisation front end the paper uses, with a segmentation-noise
model standing in for the over-/under-segmentation and occlusion artefacts
of a real tracker.

For unit tests and property-based tests that only need binary vectors with
cluster structure, :func:`make_signature_clusters` generates signatures
directly from per-identity bit-probability models -- orders of magnitude
faster, but bypassing the vision front end.
"""

from repro.datasets.surveillance import (
    SurveillanceDataset,
    SegmentationNoiseModel,
    SurveillanceDatasetConfig,
    make_surveillance_dataset,
    PAPER_TRAIN_SIGNATURES,
    PAPER_TEST_SIGNATURES,
    PAPER_IDENTITIES,
)
from repro.datasets.clusters import make_signature_clusters
from repro.datasets.splits import temporal_split, stratified_split
from repro.datasets.loaders import save_dataset, load_dataset

__all__ = [
    "SurveillanceDataset",
    "SegmentationNoiseModel",
    "SurveillanceDatasetConfig",
    "make_surveillance_dataset",
    "PAPER_TRAIN_SIGNATURES",
    "PAPER_TEST_SIGNATURES",
    "PAPER_IDENTITIES",
    "make_signature_clusters",
    "temporal_split",
    "stratified_split",
    "save_dataset",
    "load_dataset",
]
