"""Saving and loading signature datasets as ``.npz`` archives.

Dataset generation renders synthetic video and is the slowest part of the
evaluation harness, so the benchmark suite and the examples persist the
generated dataset to disk and reload it on subsequent runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.datasets.surveillance import SurveillanceDataset
from repro.errors import DataError

PathLike = Union[str, Path]


def save_dataset(dataset: SurveillanceDataset, path: PathLike) -> Path:
    """Write ``dataset`` to ``path`` (``.npz``); returns the path written."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        train_signatures=dataset.train_signatures,
        train_labels=dataset.train_labels,
        test_signatures=dataset.test_signatures,
        test_labels=dataset.test_labels,
        train_frames=dataset.train_frames,
        test_frames=dataset.test_frames,
        n_bits=np.array([dataset.n_bits], dtype=np.int64),
    )
    return path


def load_dataset(path: PathLike) -> SurveillanceDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        required = {
            "train_signatures",
            "train_labels",
            "test_signatures",
            "test_labels",
            "train_frames",
            "test_frames",
            "n_bits",
        }
        missing = required - set(archive.files)
        if missing:
            raise DataError(f"dataset file {path} is missing arrays: {sorted(missing)}")
        return SurveillanceDataset(
            train_signatures=archive["train_signatures"],
            train_labels=archive["train_labels"],
            test_signatures=archive["test_signatures"],
            test_labels=archive["test_labels"],
            train_frames=archive["train_frames"],
            test_frames=archive["test_frames"],
            n_bits=int(archive["n_bits"][0]),
        )
