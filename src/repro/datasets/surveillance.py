"""Paper-scale surveillance signature dataset.

The paper's evaluation data consists of binary signatures extracted from a
two-hour indoor recording: nine people, 2,248 manually labelled training
signatures (first 30 minutes) and 1,139 test signatures, with silhouettes
degraded by partial occlusion, camera jitter and over-/under-segmentation.
This module rebuilds a dataset of the same shape from the synthetic scene:

1. the scene generator renders frames with ground-truth silhouettes for the
   nine actors,
2. a :class:`SegmentationNoiseModel` corrupts each silhouette the way a real
   background-subtraction + connected-components pipeline would (eroded or
   dilated boundaries, missing bands from partial occlusion, background
   contamination, occasional merging with another object),
3. the silhouette is size-filtered with the paper's 768-pixel rule, and
4. the signature front end (:mod:`repro.signatures`) turns the silhouette's
   colour histogram into a 768-bit binary signature.

The split is temporal, exactly as in the paper: the first part of the
sequence becomes the training set and the remainder the test set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError
from repro.signatures.binarize import MeanThreshold, ThresholdStrategy
from repro.signatures.histogram import rgb_histogram
from repro.signatures.binarize import binarize_histogram
from repro.vision.morphology import binary_dilate, binary_erode
from repro.vision.synthetic import (
    ActorSpec,
    SceneConfig,
    SyntheticSurveillanceScene,
    default_actor_palette,
)

#: The paper's dataset sizes (section IV).
PAPER_TRAIN_SIGNATURES = 2248
PAPER_TEST_SIGNATURES = 1139
PAPER_IDENTITIES = 9

#: The paper's minimum silhouette size (pixels); scaled to the synthetic
#: scene's resolution when building the dataset.
PAPER_MIN_SILHOUETTE_PIXELS = 768


def _erode_shaving_frame_edge(mask: np.ndarray) -> np.ndarray:
    """Radius-1 erosion that shaves the silhouette's outline everywhere.

    ``binary_erode`` treats out-of-frame pixels as foreground (the right
    segmentation semantics: a person entering the scene is not eaten from
    outside the image).  Boundary *noise*, however, models a sloppy
    differencing stage that under-segments the whole outline, frame edge
    included -- so the corruption pads with background first, which keeps
    this dataset bit-identical to the seed protocol.
    """
    padded = np.zeros((mask.shape[0] + 2, mask.shape[1] + 2), dtype=bool)
    padded[1:-1, 1:-1] = mask
    return binary_erode(padded, 1)[1:-1, 1:-1]


@dataclass(frozen=True)
class SegmentationNoiseModel:
    """Models the silhouette degradation a real segmentation pipeline causes.

    Attributes
    ----------
    boundary_noise_probability:
        Chance that a silhouette is eroded or dilated by one pixel
        (boundary uncertainty of background differencing).
    partial_occlusion_probability:
        Chance that part of the silhouette is removed (under-segmentation /
        partial occlusion by furniture).  Half of these events remove the
        silhouette's upper or lower half outright, so each identity's
        signatures form several distinct modes (full body, torso only, legs
        only) -- this is the frame-to-frame variation visible in the
        paper's figure 3 and the reason the paper needs 40 neurons rather
        than the 9-neuron minimum.
    max_occlusion_fraction:
        Maximum fraction of the silhouette height removed by a random
        occlusion band.
    contamination_probability:
        Chance that the silhouette is dilated so that background pixels leak
        into the histogram (over-segmentation).
    merge_probability:
        Chance that the silhouette is merged with another object visible in
        the same frame (two people segmented as one blob) -- the most
        damaging artefact for identification.
    """

    boundary_noise_probability: float = 0.5
    partial_occlusion_probability: float = 0.45
    max_occlusion_fraction: float = 0.4
    contamination_probability: float = 0.3
    merge_probability: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "boundary_noise_probability",
            "partial_occlusion_probability",
            "contamination_probability",
            "merge_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
        if not 0.0 <= self.max_occlusion_fraction < 1.0:
            raise ConfigurationError(
                "max_occlusion_fraction must lie in [0, 1), got "
                f"{self.max_occlusion_fraction}"
            )

    def corrupt(
        self,
        mask: np.ndarray,
        other_masks: list[np.ndarray],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return a corrupted copy of ``mask``."""
        corrupted = mask.copy()
        if rng.random() < self.boundary_noise_probability:
            if rng.random() < 0.5:
                corrupted = _erode_shaving_frame_edge(corrupted)
            else:
                corrupted = binary_dilate(corrupted, 1)
        if rng.random() < self.partial_occlusion_probability and corrupted.any():
            rows = np.flatnonzero(corrupted.any(axis=1))
            height = rows.size
            mode = rng.random()
            if mode < 0.25:
                # Upper half hidden (e.g. person behind a tall cabinet).
                corrupted[rows[0] : rows[0] + height // 2, :] = False
            elif mode < 0.5:
                # Lower half hidden (the common case: desks and chairs).
                corrupted[rows[height // 2] :, :] = False
            else:
                band = max(int(height * rng.uniform(0.1, self.max_occlusion_fraction)), 1)
                start = int(rng.integers(0, max(height - band, 1)))
                corrupted[rows[start] : rows[start] + band, :] = False
        if rng.random() < self.contamination_probability:
            corrupted = binary_dilate(corrupted, 1)
        if other_masks and rng.random() < self.merge_probability:
            other = other_masks[int(rng.integers(0, len(other_masks)))]
            corrupted = corrupted | other
        return corrupted


@dataclass
class SurveillanceDatasetConfig:
    """Configuration of the paper-scale dataset builder.

    ``scale`` shrinks the target signature counts proportionally so tests
    and benchmarks can run on a fraction of the paper-scale data while
    keeping the identical generation process (``scale=1.0`` reproduces the
    paper's 2,248 / 1,139 split sizes).
    """

    n_identities: int = PAPER_IDENTITIES
    train_signatures: int = PAPER_TRAIN_SIGNATURES
    test_signatures: int = PAPER_TEST_SIGNATURES
    scale: float = 1.0
    bins_per_channel: int = 256
    min_silhouette_pixels: Optional[int] = None
    lighting_periods_per_split: float = 2.5
    noise: SegmentationNoiseModel = field(default_factory=SegmentationNoiseModel)
    scene: SceneConfig = field(default_factory=SceneConfig)

    def __post_init__(self) -> None:
        if self.n_identities <= 0:
            raise ConfigurationError(
                f"n_identities must be positive, got {self.n_identities}"
            )
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(f"scale must lie in (0, 1], got {self.scale}")
        if self.train_signatures <= 0 or self.test_signatures <= 0:
            raise ConfigurationError("signature counts must be positive")
        if self.lighting_periods_per_split <= 0:
            raise ConfigurationError(
                "lighting_periods_per_split must be positive, got "
                f"{self.lighting_periods_per_split}"
            )

    @property
    def target_train(self) -> int:
        return max(int(round(self.train_signatures * self.scale)), self.n_identities)

    @property
    def target_test(self) -> int:
        return max(int(round(self.test_signatures * self.scale)), self.n_identities)

    @property
    def n_bits(self) -> int:
        return 3 * self.bins_per_channel


@dataclass
class SurveillanceDataset:
    """Binary signature dataset with a temporal train/test split.

    Attributes
    ----------
    train_signatures, test_signatures:
        ``(n, n_bits)`` uint8 matrices of binary signatures.
    train_labels, test_labels:
        Ground-truth identity labels for each signature.
    train_frames, test_frames:
        The frame index each signature was extracted from (provenance for
        figure-3 style plots).
    n_bits:
        Signature length.
    config:
        The configuration the dataset was generated with.
    """

    train_signatures: np.ndarray
    train_labels: np.ndarray
    test_signatures: np.ndarray
    test_labels: np.ndarray
    train_frames: np.ndarray
    test_frames: np.ndarray
    n_bits: int
    config: Optional[SurveillanceDatasetConfig] = None

    @property
    def n_identities(self) -> int:
        return int(np.unique(np.concatenate([self.train_labels, self.test_labels])).size)

    @property
    def n_train(self) -> int:
        return int(self.train_signatures.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.test_signatures.shape[0])

    def signatures_for_identity(
        self, identity: int, split: str = "train"
    ) -> np.ndarray:
        """All signatures of one identity, in temporal order (figure 3)."""
        if split == "train":
            signatures, labels, frames = (
                self.train_signatures,
                self.train_labels,
                self.train_frames,
            )
        elif split == "test":
            signatures, labels, frames = (
                self.test_signatures,
                self.test_labels,
                self.test_frames,
            )
        else:
            raise ConfigurationError(f"split must be 'train' or 'test', got {split!r}")
        selected = labels == identity
        order = np.argsort(frames[selected], kind="stable")
        return signatures[selected][order]

    def summary(self) -> dict:
        """Human-readable dataset summary used in EXPERIMENTS.md."""
        return {
            "identities": self.n_identities,
            "train_signatures": self.n_train,
            "test_signatures": self.n_test,
            "bits": self.n_bits,
            "train_bits_set_mean": float(self.train_signatures.sum(axis=1).mean()),
            "test_bits_set_mean": float(self.test_signatures.sum(axis=1).mean()),
        }


# --------------------------------------------------------------------------- #
# Generation
# --------------------------------------------------------------------------- #
_DATASET_CACHE: dict[tuple, SurveillanceDataset] = {}


def _min_silhouette(config: SurveillanceDatasetConfig) -> int:
    """Scale the paper's 768-pixel rule to the synthetic scene resolution.

    The paper's camera is VGA-class; the synthetic scene is much smaller, so
    the noise filter is scaled by the area ratio (with a small floor) unless
    the configuration pins an explicit value.
    """
    if config.min_silhouette_pixels is not None:
        return config.min_silhouette_pixels
    scene_area = config.scene.height * config.scene.width
    reference_area = 640 * 480
    scaled = int(PAPER_MIN_SILHOUETTE_PIXELS * scene_area / reference_area)
    return max(scaled, 48)


def _collect_signatures(
    scene: SyntheticSurveillanceScene,
    config: SurveillanceDatasetConfig,
    rng: np.random.Generator,
    target_count: int,
    start_frame: int,
    strategy: ThresholdStrategy,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Render frames until ``target_count`` signatures have been extracted.

    Collection keeps going (past ``target_count`` if necessary) until every
    identity has contributed a reasonable share of signatures, then the
    result is thinned back to ``target_count`` by even temporal subsampling.
    This keeps small-scale datasets (``scale`` well below 1) class-balanced
    even though actors enter and leave the scene at different times.

    Frames are sampled with a stride chosen so that the collection spans
    roughly ``config.lighting_periods_per_split`` full periods of the
    scene's lighting drift regardless of how many signatures are needed.
    The paper's training half-hour likewise spans the full range of
    lighting the later test frames see; without this the temporal split
    would introduce a lighting-induced distribution shift between training
    and testing that the paper's data does not have.
    """
    min_pixels = _min_silhouette(config)
    per_identity_minimum = max(target_count // (3 * config.n_identities), 1)
    signatures: list[np.ndarray] = []
    labels: list[int] = []
    frames: list[int] = []
    counts = {actor.identity: 0 for actor in scene.actors}

    expected_signatures_per_frame = max(config.n_identities * 0.3, 1.0)
    frames_needed = target_count / expected_signatures_per_frame
    desired_span = config.lighting_periods_per_split * config.scene.lighting_period_frames
    stride = max(int(round(desired_span / max(frames_needed, 1.0))), 1)

    frame_index = start_frame
    # Hard stop so a misconfigured scene cannot loop forever.
    max_frames = start_frame + stride * (50 * target_count + 5000)

    def _satisfied() -> bool:
        if len(signatures) < target_count:
            return False
        return all(count >= per_identity_minimum for count in counts.values())

    while not _satisfied() and frame_index < max_frames:
        frame = scene.render_frame(frame_index)
        visible = list(frame.truth_masks.items())
        for identity, mask in visible:
            others = [m for other_id, m in visible if other_id != identity]
            corrupted = config.noise.corrupt(mask, others, rng)
            if int(corrupted.sum()) < min_pixels:
                continue
            histogram = rgb_histogram(frame.image, corrupted, config.bins_per_channel)
            bits = binarize_histogram(histogram, strategy)
            signatures.append(bits)
            labels.append(identity)
            frames.append(frame_index)
            counts[identity] += 1
        frame_index += stride

    X = np.array(signatures, dtype=np.uint8)
    y = np.array(labels, dtype=np.int64)
    f = np.array(frames, dtype=np.int64)
    if X.shape[0] > target_count:
        keep = np.linspace(0, X.shape[0] - 1, target_count).round().astype(np.int64)
        X, y, f = X[keep], y[keep], f[keep]
    return X, y, f, frame_index


def make_surveillance_dataset(
    *,
    scale: float = 1.0,
    n_identities: int = PAPER_IDENTITIES,
    config: SurveillanceDatasetConfig | None = None,
    actors: list[ActorSpec] | None = None,
    strategy: ThresholdStrategy | None = None,
    seed: SeedLike = 2010,
    use_cache: bool = True,
) -> SurveillanceDataset:
    """Build the paper-scale surveillance signature dataset.

    Parameters
    ----------
    scale:
        Fraction of the paper's signature counts to generate (1.0 gives
        2,248 training and 1,139 test signatures; 0.1 gives a fast dataset
        for unit tests with the same generation process).
    n_identities:
        Number of people in the scene (paper: nine).
    config:
        Full configuration; when given, ``scale`` and ``n_identities``
        passed here are ignored in favour of the config's values.
    actors:
        Explicit actor specifications (defaults to the standard palette).
    strategy:
        Histogram binarisation rule (defaults to the paper's mean
        threshold).
    seed:
        Master seed controlling the scene, noise model draws and ordering.
    use_cache:
        Re-use an in-process cached dataset when the parameters match
        (dataset generation renders video frames and is the slowest step of
        the evaluation harness).
    """
    if config is None:
        config = SurveillanceDatasetConfig(scale=scale, n_identities=n_identities)
    strategy = strategy or MeanThreshold()
    cache_key = (
        config.n_identities,
        config.target_train,
        config.target_test,
        config.bins_per_channel,
        config.scene.height,
        config.scene.width,
        config.noise,
        repr(strategy),
        int(seed) if isinstance(seed, int) else None,
    )
    if use_cache and cache_key[-1] is not None and cache_key in _DATASET_CACHE:
        return _DATASET_CACHE[cache_key]

    rng = as_generator(seed)
    actor_specs = actors if actors is not None else default_actor_palette(
        config.n_identities, seed=rng.integers(0, 2**31 - 1)
    )
    scene = SyntheticSurveillanceScene(
        actors=actor_specs, config=config.scene, seed=rng.integers(0, 2**31 - 1)
    )

    train_X, train_y, train_f, next_frame = _collect_signatures(
        scene, config, rng, config.target_train, start_frame=0, strategy=strategy
    )
    # A gap between the two halves mirrors the paper's temporal split
    # (training uses the first 30 minutes, testing comes later).
    test_X, test_y, test_f, _ = _collect_signatures(
        scene,
        config,
        rng,
        config.target_test,
        start_frame=next_frame + 100,
        strategy=strategy,
    )

    dataset = SurveillanceDataset(
        train_signatures=train_X,
        train_labels=train_y,
        test_signatures=test_X,
        test_labels=test_y,
        train_frames=train_f,
        test_frames=test_f,
        n_bits=config.n_bits,
        config=config,
    )
    if use_cache and cache_key[-1] is not None:
        _DATASET_CACHE[cache_key] = dataset
    return dataset
