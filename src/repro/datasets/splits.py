"""Train/test split helpers.

The paper uses a *temporal* split -- the first 30 minutes of video train the
map and later frames test it -- which is what :func:`temporal_split`
implements.  :func:`stratified_split` is provided for experiments that need
class-balanced random splits instead (e.g. cross-validation style ablations).
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError, DataError


def _validate_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X)
    y = np.asarray(y)
    if X.ndim != 2:
        raise DataError(f"X must be a 2-D matrix, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise DataError(
            f"y must be a vector with one label per row of X; got {y.shape} for "
            f"{X.shape[0]} rows"
        )
    return X, y


def temporal_split(
    X: np.ndarray,
    y: np.ndarray,
    order: np.ndarray,
    train_fraction: float = 0.66,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split by time: earliest ``train_fraction`` of samples train, rest test.

    Parameters
    ----------
    X, y:
        Signatures and labels.
    order:
        A sortable per-sample key (frame index or timestamp).
    train_fraction:
        Fraction of samples (earliest first) assigned to training.

    Returns
    -------
    (X_train, y_train, X_test, y_test)
    """
    X, y = _validate_xy(X, y)
    order = np.asarray(order)
    if order.shape[0] != X.shape[0]:
        raise DataError(
            f"order must have one entry per sample; got {order.shape[0]} for "
            f"{X.shape[0]} samples"
        )
    if not 0.0 < train_fraction < 1.0:
        raise ConfigurationError(
            f"train_fraction must lie strictly between 0 and 1, got {train_fraction}"
        )
    ranking = np.argsort(order, kind="stable")
    cut = int(round(train_fraction * X.shape[0]))
    cut = min(max(cut, 1), X.shape[0] - 1)
    train_idx, test_idx = ranking[:cut], ranking[cut:]
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]


def stratified_split(
    X: np.ndarray,
    y: np.ndarray,
    train_fraction: float = 0.66,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split preserving per-class proportions.

    Every class contributes at least one sample to each side provided it has
    at least two samples overall.
    """
    X, y = _validate_xy(X, y)
    if not 0.0 < train_fraction < 1.0:
        raise ConfigurationError(
            f"train_fraction must lie strictly between 0 and 1, got {train_fraction}"
        )
    rng = as_generator(seed)
    train_indices: list[int] = []
    test_indices: list[int] = []
    for label in np.unique(y):
        members = np.flatnonzero(y == label)
        members = members[rng.permutation(members.size)]
        cut = int(round(train_fraction * members.size))
        if members.size >= 2:
            cut = min(max(cut, 1), members.size - 1)
        train_indices.extend(members[:cut].tolist())
        test_indices.extend(members[cut:].tolist())
    train_idx = np.array(sorted(train_indices), dtype=np.int64)
    test_idx = np.array(sorted(test_indices), dtype=np.int64)
    return X[train_idx], y[train_idx], X[test_idx], y[test_idx]
