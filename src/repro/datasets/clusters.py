"""Fast synthetic signature clusters for unit and property-based tests.

Each identity is modelled by a vector of per-bit "on" probabilities: a core
set of bits that are almost always set (the identity's stable colour bins),
a shared set of bits that are often set for every identity (trouser/skin
bins), and background noise bits.  Sampling from these models produces
binary vectors with the same qualitative structure as the real signatures
(stable per-identity core, frame-to-frame variation) without rendering any
video, which keeps SOM unit tests fast.
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError


def make_signature_clusters(
    n_identities: int = 9,
    samples_per_identity: int = 50,
    n_bits: int = 768,
    *,
    core_bits: int | None = None,
    shared_bits: int | None = None,
    core_on_probability: float = 0.9,
    shared_on_probability: float = 0.6,
    noise_on_probability: float = 0.02,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample clustered binary signatures.

    Parameters
    ----------
    n_identities:
        Number of distinct classes.
    samples_per_identity:
        Signatures drawn per class.
    n_bits:
        Signature length.
    core_bits:
        Number of bits reserved as each identity's stable core.  When
        omitted, a size is chosen that comfortably fits ``n_bits`` (about
        half the signature is left for noise bits).
    shared_bits:
        Number of bits shared by all identities (set with
        ``shared_on_probability`` regardless of class).  Defaults to a
        tenth of the signature.
    core_on_probability, shared_on_probability, noise_on_probability:
        Per-bit probabilities for the three bit populations.
    seed:
        Seed or generator.

    Returns
    -------
    (X, y):
        ``X`` is ``(n_identities * samples_per_identity, n_bits)`` uint8,
        ``y`` the matching integer labels.
    """
    if n_identities <= 0:
        raise ConfigurationError(f"n_identities must be positive, got {n_identities}")
    if samples_per_identity <= 0:
        raise ConfigurationError(
            f"samples_per_identity must be positive, got {samples_per_identity}"
        )
    if n_bits <= 0:
        raise ConfigurationError(f"n_bits must be positive, got {n_bits}")
    if shared_bits is None:
        shared_bits = n_bits // 10
    if core_bits is None:
        core_bits = max((n_bits - shared_bits) // (2 * n_identities), 1)
    if core_bits * n_identities + shared_bits > n_bits:
        raise ConfigurationError(
            f"{n_identities} identities x {core_bits} core bits + {shared_bits} shared "
            f"bits do not fit in {n_bits} bits"
        )
    for name, p in (
        ("core_on_probability", core_on_probability),
        ("shared_on_probability", shared_on_probability),
        ("noise_on_probability", noise_on_probability),
    ):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"{name} must lie in [0, 1], got {p}")

    rng = as_generator(seed)
    shared_slice = slice(n_identities * core_bits, n_identities * core_bits + shared_bits)

    signatures = []
    labels = []
    for identity in range(n_identities):
        probabilities = np.full(n_bits, noise_on_probability)
        core_slice = slice(identity * core_bits, (identity + 1) * core_bits)
        probabilities[core_slice] = core_on_probability
        probabilities[shared_slice] = shared_on_probability
        draws = rng.random(size=(samples_per_identity, n_bits)) < probabilities
        signatures.append(draws.astype(np.uint8))
        labels.extend([identity] * samples_per_identity)
    X = np.vstack(signatures)
    y = np.array(labels, dtype=np.int64)
    order = rng.permutation(X.shape[0])
    return X[order], y[order]
