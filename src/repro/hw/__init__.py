"""Cycle-accurate behavioural model of the paper's FPGA architecture.

Section V of the paper describes a Virtex-4 (XC4VLX160) design made of five
blocks -- weight initialisation, pattern input, winner-take-all (Hamming
distance + comparator tree), neighbourhood update and VGA display -- clocked
at 40 MHz.  This subpackage models that architecture at cycle granularity:

* :mod:`repro.hw.clock` -- clock domain and cycle/time accounting,
* :mod:`repro.hw.lfsr` -- the LFSR pseudo-random bit generators used by the
  weight initialisation block (and by the stochastic neighbourhood rule),
* :mod:`repro.hw.bram` -- a BlockRAM model with capacity accounting
  (RAMB16 primitives),
* :mod:`repro.hw.blocks` -- one module per hardware block,
* :mod:`repro.hw.fpga_bsom` -- the integrated design (figure 4), exposing
  the same query interface as the software bSOM so results can be compared
  bit-for-bit,
* :mod:`repro.hw.resources` -- analytic resource estimation reproducing
  Table IV,
* :mod:`repro.hw.device` -- the device database (XC4VLX160 and relatives),
* :mod:`repro.hw.throughput` -- the timing/throughput model behind the
  25,000 signatures/second claim.
"""

from repro.hw.clock import ClockDomain
from repro.hw.lfsr import Lfsr
from repro.hw.bram import BlockRam, BlockRamBank
from repro.hw.device import FpgaDevice, VIRTEX4_XC4VLX160, DEVICES
from repro.hw.resources import (
    ResourceEstimate,
    ResourceReport,
    estimate_resources,
    PAPER_TABLE4,
)
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.hw.fpga_bsom import FpgaBsomConfig, FpgaBsomDesign, RecognitionTrace
from repro.hw.blocks import (
    WeightInitialisationBlock,
    PatternInputBlock,
    HammingDistanceUnit,
    WinnerTakeAllUnit,
    NeighbourhoodUpdateBlock,
    VgaDisplayBlock,
)

__all__ = [
    "ClockDomain",
    "Lfsr",
    "BlockRam",
    "BlockRamBank",
    "FpgaDevice",
    "VIRTEX4_XC4VLX160",
    "DEVICES",
    "ResourceEstimate",
    "ResourceReport",
    "estimate_resources",
    "PAPER_TABLE4",
    "ThroughputModel",
    "ThroughputReport",
    "FpgaBsomConfig",
    "FpgaBsomDesign",
    "RecognitionTrace",
    "WeightInitialisationBlock",
    "PatternInputBlock",
    "HammingDistanceUnit",
    "WinnerTakeAllUnit",
    "NeighbourhoodUpdateBlock",
    "VgaDisplayBlock",
]
