"""Analytic FPGA resource estimation (reproduces Table IV).

Table IV reports the post-synthesis utilisation of the 40x768 design on the
XC4VLX160: 4,095 flip-flops, 18,387 LUTs, 147 bonded IOBs, 11,468 occupied
slices and 43 RAM16s.  Re-running Xilinx ISE is obviously out of scope for a
Python reproduction, so this module provides an *analytic* per-block model:
each block contributes registers, LUTs and block RAMs according to its
structure (counter widths, comparator tree size, per-neuron storage), with
per-block overhead constants calibrated once against the paper's totals for
the reference 40-neuron / 768-bit configuration.

What the model is good for:

* reproducing Table IV's numbers (within a few percent) for the reference
  configuration,
* answering scaling questions -- how do LUTs/FFs/BRAMs grow with the number
  of neurons or the signature length, and on which sibling device would a
  larger design still fit -- which is how the hardware example uses it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError, DeviceCapacityError
from repro.hw.bram import RAMB16_BITS
from repro.hw.device import FpgaDevice, VIRTEX4_XC4VLX160
from repro.hw.fpga_bsom import FpgaBsomConfig

#: The paper's Table IV, kept verbatim for comparison in benchmarks/tests.
PAPER_TABLE4: dict[str, dict[str, int]] = {
    "flip_flops": {"total": 135_168, "used": 4_095, "percent": 3},
    "luts": {"total": 135_168, "used": 18_387, "percent": 13},
    "bonded_iobs": {"total": 768, "used": 147, "percent": 19},
    "slices": {"total": 67_584, "used": 11_468, "percent": 16},
    "ram16s": {"total": 288, "used": 43, "percent": 14},
}


@dataclass(frozen=True)
class ResourceEstimate:
    """Resources consumed by one block (or by the whole design)."""

    flip_flops: int
    luts: int
    ram16s: int
    bonded_iobs: int = 0

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            flip_flops=self.flip_flops + other.flip_flops,
            luts=self.luts + other.luts,
            ram16s=self.ram16s + other.ram16s,
            bonded_iobs=self.bonded_iobs + other.bonded_iobs,
        )


@dataclass
class ResourceReport:
    """Design-level resource report with device utilisation percentages."""

    per_block: dict[str, ResourceEstimate]
    total: ResourceEstimate
    device: FpgaDevice

    def slices(self) -> int:
        """Occupied-slice estimate.

        A Virtex-4 slice holds two flip-flops and two 4-input LUTs; packing
        is never perfect, so the estimate applies the packing efficiency
        observed in the paper's own numbers (about 63% of the slices touched
        by the dominant resource are occupied exclusively).
        """
        packed = max(self.total.flip_flops, self.total.luts) / 2.0
        return int(round(packed * 1.25))

    def utilisation(self) -> dict[str, dict[str, float]]:
        """Utilisation table in the layout of Table IV."""
        rows = {
            "flip_flops": (self.total.flip_flops, self.device.flip_flops),
            "luts": (self.total.luts, self.device.luts),
            "bonded_iobs": (self.total.bonded_iobs, self.device.bonded_iobs),
            "slices": (self.slices(), self.device.slices),
            "ram16s": (self.total.ram16s, self.device.ram16s),
        }
        return {
            name: {
                "total": float(total),
                "used": float(used),
                "percent": 100.0 * used / total,
            }
            for name, (used, total) in rows.items()
        }

    def check_fits(self) -> None:
        """Raise :class:`DeviceCapacityError` if the design exceeds the device."""
        for resource, row in self.utilisation().items():
            if row["used"] > row["total"]:
                raise DeviceCapacityError(resource, int(row["used"]), int(row["total"]))

    def fits(self) -> bool:
        """Whether the design fits the device."""
        try:
            self.check_fits()
        except DeviceCapacityError:
            return False
        return True


def _counter_width(maximum: int) -> int:
    return max(int(math.ceil(math.log2(maximum + 1))), 1)


def estimate_resources(
    config: FpgaBsomConfig | None = None,
    device: FpgaDevice = VIRTEX4_XC4VLX160,
) -> ResourceReport:
    """Estimate the FPGA resources of a bSOM design.

    Parameters
    ----------
    config:
        Design configuration (defaults to the paper's 40x768 design).
    device:
        Target device for utilisation percentages.
    """
    config = config or FpgaBsomConfig()
    n, bits = config.n_neurons, config.n_bits
    if n <= 0 or bits <= 0:
        raise ConfigurationError("n_neurons and n_bits must be positive")

    distance_width = _counter_width(bits)
    bit_counter_width = _counter_width(bits)
    neuron_index_width = _counter_width(n)

    # Weight initialisation: one 16-bit LFSR per neuron plus a shared bit
    # counter and a small FSM.
    weight_init = ResourceEstimate(
        flip_flops=16 * n + bit_counter_width + 8,
        luts=6 * n + 24,
        ram16s=0,
    )

    # Pattern input: the 768-bit input shift register, a bit counter and the
    # camera interface logic (part of the design's external-device logic).
    pattern_input = ResourceEstimate(
        flip_flops=bits + bit_counter_width + 16,
        luts=int(0.6 * bits) + 40,
        ram16s=0,
        bonded_iobs=24,
    )

    # Hamming unit: per neuron, a distance accumulator (10 bits), an XOR/AND
    # bit comparator and the adder logic; plus the shared bit counter.
    hamming = ResourceEstimate(
        flip_flops=n * distance_width + bit_counter_width,
        luts=n * (distance_width + 6),
        ram16s=0,
    )

    # WTA comparator tree: each two-input comparator compares two 10-bit
    # values and forwards value + index; registers hold the per-stage
    # survivors.
    padded = 1 << max(int(math.ceil(math.log2(n))), 0)
    comparators = padded - 1
    wta = ResourceEstimate(
        flip_flops=comparators * (distance_width + neuron_index_width) // 2 + 32,
        luts=comparators * (3 * distance_width + neuron_index_width),
        ram16s=0,
    )

    # Neighbourhood update: neighbourhood decode, the tri-state update logic
    # replicated per neuron in the maximum window, and an LFSR for the
    # stochastic attenuation.
    window = 2 * config.max_neighbourhood + 1
    neighbourhood = ResourceEstimate(
        flip_flops=window * 16 + 48,
        luts=window * 40 + 120,
        ram16s=0,
    )

    # Weight storage: two bit-planes (value + care) of n x bits each.
    weight_bits = 2 * n * bits
    weight_store = ResourceEstimate(
        flip_flops=0,
        luts=0,
        ram16s=-(-weight_bits // RAMB16_BITS),
    )

    # VGA display block: line/frame counters, a pixel pipeline and the
    # quarter-VGA grey-scale frame buffer the camera/monitor interface
    # double-buffers through, plus the VGA pins.  The neuron tiles are read
    # straight from the weight BlockRAMs, so they add no extra memory here.
    frame_buffer_bits = 320 * 240 * 8
    display = ResourceEstimate(
        flip_flops=220,
        luts=640,
        ram16s=-(-frame_buffer_bits // RAMB16_BITS),
        bonded_iobs=29,
    )

    # Host interface (USB signature upload), clocking and control FSMs --
    # the paper's 147 bonded IOBs include the camera, VGA and host pins.
    infrastructure = ResourceEstimate(
        flip_flops=1_280,
        luts=900,
        ram16s=1,
        bonded_iobs=94,
    )

    per_block = {
        "weight_initialisation": weight_init,
        "pattern_input": pattern_input,
        "hamming_unit": hamming,
        "winner_take_all": wta,
        "neighbourhood_update": neighbourhood,
        "weight_storage": weight_store,
        "vga_display": display,
        "infrastructure": infrastructure,
    }
    total = ResourceEstimate(0, 0, 0, 0)
    for estimate in per_block.values():
        total = total + estimate
    # Handel-C's channel/flow-control fabric adds a large proportional LUT
    # overhead on top of the structural estimate; the factor is calibrated
    # once against the paper's reference 40x768 design (Table IV).
    handel_c_lut_overhead = 3.2
    total = ResourceEstimate(
        flip_flops=total.flip_flops,
        luts=int(round(total.luts * handel_c_lut_overhead)),
        ram16s=total.ram16s,
        bonded_iobs=total.bonded_iobs,
    )
    return ResourceReport(per_block=per_block, total=total, device=device)
