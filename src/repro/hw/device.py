"""FPGA device database.

Table IV of the paper reports utilisation against the Virtex-4 XC4VLX160
(package FF1148, speed grade -10).  The totals in that table are taken as
the authoritative capacities for that part; a few sibling devices are
included so the resource estimator can answer "would this design fit on a
smaller part" questions (used by the hardware examples).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FpgaDevice:
    """Capacity of one FPGA part.

    Attributes
    ----------
    name:
        Marketing part number.
    flip_flops:
        Number of slice flip-flops.
    luts:
        Number of 4-input LUTs.
    bonded_iobs:
        Number of bonded I/O blocks for the packaged part.
    slices:
        Number of slices.
    ram16s:
        Number of RAMB16 block memories.
    logic_cells:
        Marketing "logic cells" figure (the paper quotes ~152,064 for the
        XC4VLX160).
    embedded_ram_kbits:
        Total embedded RAM in Kbits (the paper quotes 5,184 Kbits).
    """

    name: str
    flip_flops: int
    luts: int
    bonded_iobs: int
    slices: int
    ram16s: int
    logic_cells: int
    embedded_ram_kbits: int

    def capacity(self, resource: str) -> int:
        """Look up a capacity by the resource names used in Table IV."""
        mapping = {
            "flip_flops": self.flip_flops,
            "luts": self.luts,
            "bonded_iobs": self.bonded_iobs,
            "slices": self.slices,
            "ram16s": self.ram16s,
        }
        if resource not in mapping:
            raise ConfigurationError(
                f"unknown resource {resource!r}; expected one of {sorted(mapping)}"
            )
        return mapping[resource]


#: The paper's target device (Table IV totals).
VIRTEX4_XC4VLX160 = FpgaDevice(
    name="XC4VLX160",
    flip_flops=135_168,
    luts=135_168,
    bonded_iobs=768,
    slices=67_584,
    ram16s=288,
    logic_cells=152_064,
    embedded_ram_kbits=5_184,
)

#: Smaller and larger siblings for what-if sizing questions.
VIRTEX4_XC4VLX25 = FpgaDevice(
    name="XC4VLX25",
    flip_flops=21_504,
    luts=21_504,
    bonded_iobs=448,
    slices=10_752,
    ram16s=72,
    logic_cells=24_192,
    embedded_ram_kbits=1_296,
)

VIRTEX4_XC4VLX60 = FpgaDevice(
    name="XC4VLX60",
    flip_flops=53_248,
    luts=53_248,
    bonded_iobs=640,
    slices=26_624,
    ram16s=160,
    logic_cells=59_904,
    embedded_ram_kbits=2_880,
)

VIRTEX4_XC4VLX200 = FpgaDevice(
    name="XC4VLX200",
    flip_flops=178_176,
    luts=178_176,
    bonded_iobs=960,
    slices=89_088,
    ram16s=336,
    logic_cells=200_448,
    embedded_ram_kbits=6_048,
)

DEVICES: dict[str, FpgaDevice] = {
    device.name: device
    for device in (
        VIRTEX4_XC4VLX25,
        VIRTEX4_XC4VLX60,
        VIRTEX4_XC4VLX160,
        VIRTEX4_XC4VLX200,
    )
}


def get_device(name: str) -> FpgaDevice:
    """Look up a device by part number."""
    try:
        return DEVICES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown device {name!r}; known devices: {sorted(DEVICES)}"
        ) from exc
