"""The integrated FPGA bSOM design (figure 4 of the paper).

:class:`FpgaBsomDesign` wires the five hardware blocks together around the
weight BlockRAMs and a 40 MHz clock domain, reproducing the architecture of
figure 4:

* at start-up the weight-initialisation block loads random binary weights
  (768 cycles),
* for every signature the pattern-input block captures the 768-bit image
  (768 cycles), the Hamming unit evaluates all 40 neurons in parallel (768
  cycles, overlapping the next pattern's input in the real pipeline), the
  WTA comparator tree picks the winner (7 cycles), and -- during training --
  the neighbourhood block updates the winner and its neighbours (768
  cycles),
* the VGA display block runs in parallel and never charges cycles to the
  recognition path.

The design exposes the same query surface as the software
:class:`~repro.core.bsom.BinarySom` (``distances``, ``winner``,
``winners``, ``n_neurons``, ``n_bits``), so the node labeller, the
classifier and the evaluation harness can run on the hardware model
unchanged, and the equivalence tests can check the two implementations
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.core.bsom import BinarySom, BsomUpdateRule
from repro.core.topology import (
    LinearTopology,
    NeighbourhoodSchedule,
    StepwiseNeighbourhoodSchedule,
    Topology,
)
from repro.core.tristate import TriStateWeights
from repro.errors import ConfigurationError, HardwareModelError
from repro.hw.blocks.display import VgaDisplayBlock
from repro.hw.blocks.hamming_unit import HammingDistanceUnit
from repro.hw.blocks.neighbourhood import NeighbourhoodUpdateBlock
from repro.hw.blocks.pattern_input import PatternInputBlock
from repro.hw.blocks.weight_init import WeightInitialisationBlock
from repro.hw.blocks.wta import WinnerTakeAllUnit
from repro.hw.bram import BlockRamBank
from repro.hw.clock import PAPER_CLOCK_MHZ, ClockDomain


@dataclass
class FpgaBsomConfig:
    """Configuration of the FPGA bSOM design (Table III defaults).

    Attributes
    ----------
    n_neurons:
        Network size (40).
    n_bits:
        Input and weight vector length (768).
    image_shape:
        Shape of the binary image the camera interface streams (24x32).
    max_neighbourhood:
        Maximum neighbourhood radius (4).
    clock_mhz:
        Design clock (40 MHz).
    bit_serial:
        Simulate the Hamming unit bit by bit (slow, exact) instead of
        vectorised with identical cycle accounting.
    seed:
        Seed for the LFSR weight initialisation and the neighbourhood
        block's pseudo-random stream.
    """

    n_neurons: int = 40
    n_bits: int = 768
    image_shape: tuple[int, int] = (24, 32)
    max_neighbourhood: int = 4
    clock_mhz: float = PAPER_CLOCK_MHZ
    bit_serial: bool = False
    seed: Optional[int] = None
    update_rule: BsomUpdateRule = field(default_factory=BsomUpdateRule)

    def __post_init__(self) -> None:
        if self.n_neurons <= 0 or self.n_bits <= 0:
            raise ConfigurationError("n_neurons and n_bits must be positive")
        rows, cols = self.image_shape
        if rows * cols != self.n_bits:
            raise ConfigurationError(
                f"image shape {self.image_shape} holds {rows * cols} bits, expected "
                f"{self.n_bits}"
            )
        if self.max_neighbourhood < 0:
            raise ConfigurationError(
                f"max_neighbourhood must be non-negative, got {self.max_neighbourhood}"
            )


@dataclass(frozen=True)
class RecognitionTrace:
    """Cycle-level account of one recognition (or training) pass.

    Attributes
    ----------
    winner:
        Index of the winning neuron.
    distance:
        Its Hamming distance to the input.
    distances:
        All neuron distances.
    input_cycles, hamming_cycles, wta_cycles, update_cycles:
        Cycles charged by each block (``update_cycles`` is zero for pure
        recognition).
    total_cycles:
        Sum of the above.
    elapsed_seconds:
        Wall-clock duration of this pass at the design clock.
    """

    winner: int
    distance: int
    distances: np.ndarray
    input_cycles: int
    hamming_cycles: int
    wta_cycles: int
    update_cycles: int
    total_cycles: int
    elapsed_seconds: float


class FpgaBsomDesign:
    """Cycle-accurate model of the paper's FPGA bSOM (figure 4)."""

    def __init__(
        self,
        config: FpgaBsomConfig | None = None,
        *,
        topology: Topology | None = None,
        schedule: NeighbourhoodSchedule | None = None,
        seed: SeedLike = None,
    ):
        self.config = config or FpgaBsomConfig()
        if seed is not None and self.config.seed is None:
            self.config.seed = int(as_generator(seed).integers(0, 2**31 - 1))
        rng = as_generator(self.config.seed)
        n, bits = self.config.n_neurons, self.config.n_bits

        self.clock = ClockDomain(self.config.clock_mhz)
        self.topology = topology or LinearTopology(n)
        self.schedule = schedule or StepwiseNeighbourhoodSchedule(
            max_radius=self.config.max_neighbourhood
        )

        self.brams = BlockRamBank()
        self._value_plane = self.brams.allocate("weights_value", n, bits)
        self._care_plane = self.brams.allocate("weights_care", n, bits)

        self.weight_init = WeightInitialisationBlock(
            n, bits, seed=int(rng.integers(0, 2**31 - 1))
        )
        self.pattern_input = PatternInputBlock(bits, self.config.image_shape)
        self.hamming_unit = HammingDistanceUnit(
            n, bits, bit_serial=self.config.bit_serial
        )
        self.wta = WinnerTakeAllUnit(n)
        self.neighbourhood = NeighbourhoodUpdateBlock(
            n,
            bits,
            topology=self.topology,
            schedule=self.schedule,
            update_rule=self.config.update_rule,
            seed=int(rng.integers(0, 2**31 - 1)),
        )
        self.display = VgaDisplayBlock(n, tile_shape=self.config.image_shape)

        self._initialised = False
        self.patterns_processed = 0
        self.patterns_trained = 0

    # ------------------------------------------------------------------ #
    # Introspection shared with the software map
    # ------------------------------------------------------------------ #
    @property
    def n_neurons(self) -> int:
        return self.config.n_neurons

    @property
    def n_bits(self) -> int:
        return self.config.n_bits

    def specification(self) -> dict[str, object]:
        """The design specification of Table III."""
        return {
            "network_size": f"{self.config.n_neurons} neurons",
            "input_vectors": f"{self.config.n_bits} bits",
            "neuron_vectors": f"{self.config.n_bits} bits",
            "initial_weights": "Random",
            "maximum_neighbourhood": f"{self.config.max_neighbourhood} neurons",
            "clock_mhz": self.config.clock_mhz,
        }

    # ------------------------------------------------------------------ #
    # Weights
    # ------------------------------------------------------------------ #
    def initialise(self) -> int:
        """Run the weight-initialisation block; returns the cycles consumed."""
        cycles = self.weight_init.run(self._value_plane, self._care_plane, self.clock)
        self._initialised = True
        return cycles

    @property
    def initialised(self) -> bool:
        """Whether the weight memories hold valid data."""
        return self._initialised

    def export_weights(self) -> TriStateWeights:
        """Read the weight BlockRAMs back as tri-state weights."""
        self._require_initialised()
        return TriStateWeights.from_bitplanes(
            self._value_plane.dump(), self._care_plane.dump()
        )

    def load_weights(self, weights: TriStateWeights | BinarySom) -> None:
        """Load weights from software (a trained map, or raw tri-state weights).

        This is the paper's deployment flow: the map is trained off-line on
        a PC and the resulting weights are written into the FPGA BlockRAM
        for real-time recognition.
        """
        if isinstance(weights, BinarySom):
            weights = weights.weights
        if weights.n_neurons != self.n_neurons or weights.n_bits != self.n_bits:
            raise ConfigurationError(
                f"weights of shape {weights.values.shape} do not fit a "
                f"{self.n_neurons}x{self.n_bits} design"
            )
        value, care = weights.to_bitplanes()
        for neuron in range(self.n_neurons):
            self._value_plane.write(neuron, value[neuron])
            self._care_plane.write(neuron, care[neuron])
        self._initialised = True

    def to_software(self) -> BinarySom:
        """Build a software :class:`BinarySom` holding the current weights."""
        som = BinarySom(
            self.n_neurons,
            self.n_bits,
            topology=self.topology,
            schedule=self.schedule,
            update_rule=self.config.update_rule,
            seed=self.config.seed,
        )
        som.set_weights(self.export_weights())
        return som

    def _require_initialised(self) -> None:
        if not self._initialised:
            raise HardwareModelError(
                "the weight memories have not been initialised; call initialise() "
                "or load_weights() first"
            )

    # ------------------------------------------------------------------ #
    # Recognition and training
    # ------------------------------------------------------------------ #
    def _recognise(self, pattern: np.ndarray) -> tuple[int, int, np.ndarray, int, int, int]:
        captured = self.pattern_input.acquire(pattern, self.clock)
        input_cycles = self.pattern_input.cycles_required
        distances = self.hamming_unit.compute(
            captured, self._value_plane.dump(), self._care_plane.dump(), self.clock
        )
        hamming_cycles = self.hamming_unit.cycles_required
        winner, distance = self.wta.select(distances, self.clock)
        wta_cycles = self.wta.cycles_required
        return winner, distance, distances, input_cycles, hamming_cycles, wta_cycles

    def present(self, pattern: np.ndarray) -> RecognitionTrace:
        """Run one recognition pass (no weight update) and account its cycles."""
        self._require_initialised()
        start_cycles = self.clock.cycles
        winner, distance, distances, ic, hc, wc = self._recognise(pattern)
        total = self.clock.cycles - start_cycles
        self.patterns_processed += 1
        return RecognitionTrace(
            winner=winner,
            distance=distance,
            distances=distances,
            input_cycles=ic,
            hamming_cycles=hc,
            wta_cycles=wc,
            update_cycles=0,
            total_cycles=total,
            elapsed_seconds=self.clock.elapsed_seconds(total),
        )

    def train_pattern(
        self, pattern: np.ndarray, iteration: int, total_iterations: int
    ) -> RecognitionTrace:
        """Run one training pass: recognition followed by a neighbourhood update."""
        self._require_initialised()
        start_cycles = self.clock.cycles
        winner, distance, distances, ic, hc, wc = self._recognise(pattern)
        self.neighbourhood.update(
            winner,
            self.pattern_input.register,
            self._value_plane,
            self._care_plane,
            iteration,
            total_iterations,
            self.clock,
        )
        update_cycles = self.neighbourhood.cycles_required
        total = self.clock.cycles - start_cycles
        self.patterns_processed += 1
        self.patterns_trained += 1
        return RecognitionTrace(
            winner=winner,
            distance=distance,
            distances=distances,
            input_cycles=ic,
            hamming_cycles=hc,
            wta_cycles=wc,
            update_cycles=update_cycles,
            total_cycles=total,
            elapsed_seconds=self.clock.elapsed_seconds(total),
        )

    def train(
        self,
        X: np.ndarray,
        epochs: int,
        *,
        shuffle: bool = True,
        seed: SeedLike = None,
    ) -> int:
        """Train on a whole signature matrix for ``epochs`` passes.

        Returns the total number of cycles consumed by training.
        """
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim != 2 or X.shape[1] != self.n_bits:
            raise ConfigurationError(
                f"training data of shape {X.shape} does not match a {self.n_bits}-bit design"
            )
        if epochs <= 0:
            raise ConfigurationError(f"epochs must be positive, got {epochs}")
        self._require_initialised()
        rng = as_generator(seed)
        start_cycles = self.clock.cycles
        for epoch in range(epochs):
            order = rng.permutation(X.shape[0]) if shuffle else np.arange(X.shape[0])
            for index in order:
                self.train_pattern(X[index], epoch, epochs)
        return self.clock.cycles - start_cycles

    # ------------------------------------------------------------------ #
    # Software-compatible query interface
    # ------------------------------------------------------------------ #
    def distances(self, x: np.ndarray) -> np.ndarray:
        """Masked Hamming distances of every neuron to ``x`` (no cycle charge)."""
        self._require_initialised()
        return self.hamming_unit.compute(
            np.asarray(x, dtype=np.uint8), self._value_plane.dump(), self._care_plane.dump()
        )

    def winner(self, x: np.ndarray) -> int:
        """Winning neuron index for ``x`` using the comparator tree."""
        winner, _ = self.wta.select(self.distances(x))
        return winner

    def winners(self, X: np.ndarray) -> np.ndarray:
        """Winning neuron for every row of ``X`` (used by the node labeller)."""
        X = np.asarray(X, dtype=np.uint8)
        return np.array([self.winner(row) for row in X], dtype=np.int64)

    def render_display(self) -> np.ndarray:
        """Render the current weights through the VGA display block."""
        self._require_initialised()
        return self.display.render(self._value_plane.dump(), self._care_plane.dump())
