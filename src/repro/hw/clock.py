"""Clock domain and cycle accounting for the hardware model.

Every block in the FPGA design charges its work to a shared
:class:`ClockDomain`; the integrated design then converts cycle counts into
wall-clock time at the design's 40 MHz clock to reproduce the paper's
throughput statements (25,000 signatures per second, training several
thousand patterns in under a second).
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: The paper's synthesised clock frequency (section V-E).
PAPER_CLOCK_MHZ = 40.0


class ClockDomain:
    """A single clock domain with a monotonically increasing cycle counter.

    Parameters
    ----------
    frequency_mhz:
        Clock frequency in MHz (40 MHz in the paper's design, which also
        drives the camera and VGA interfaces).
    """

    def __init__(self, frequency_mhz: float = PAPER_CLOCK_MHZ):
        if frequency_mhz <= 0:
            raise ConfigurationError(
                f"frequency_mhz must be positive, got {frequency_mhz}"
            )
        self.frequency_mhz = float(frequency_mhz)
        self._cycles = 0

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz."""
        return self.frequency_mhz * 1e6

    @property
    def cycles(self) -> int:
        """Total cycles elapsed since construction or the last reset."""
        return self._cycles

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e3 / self.frequency_mhz

    def tick(self, cycles: int = 1) -> int:
        """Advance the clock by ``cycles`` and return the new total."""
        if cycles < 0:
            raise ConfigurationError(f"cannot advance the clock by {cycles} cycles")
        self._cycles += int(cycles)
        return self._cycles

    def reset(self) -> None:
        """Reset the cycle counter to zero."""
        self._cycles = 0

    def elapsed_seconds(self, cycles: int | None = None) -> float:
        """Convert ``cycles`` (default: the running total) into seconds."""
        count = self._cycles if cycles is None else int(cycles)
        if count < 0:
            raise ConfigurationError(f"cycle count must be non-negative, got {count}")
        return count / self.frequency_hz

    def cycles_for_seconds(self, seconds: float) -> int:
        """Number of whole cycles that fit in ``seconds``."""
        if seconds < 0:
            raise ConfigurationError(f"seconds must be non-negative, got {seconds}")
        return int(seconds * self.frequency_hz)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClockDomain(frequency_mhz={self.frequency_mhz}, cycles={self._cycles})"
