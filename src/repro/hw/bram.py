"""Block RAM model with capacity accounting.

Section V-F: "The neurons (weights) of the bSOM are stored onto BlockRAM on
the FPGA chip."  On a Virtex-4 the embedded memories are RAMB16 primitives
of 18 Kbit each (16 Kbit of data plus parity).  The model here provides a
word-addressable memory with a configurable word width, tracks how many
RAMB16 primitives a given capacity consumes, and is used both by the
integrated design (to hold tri-state weights as two bit-planes) and by the
resource estimator that reproduces Table IV's RAM16 row.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, HardwareModelError

#: Usable data bits per Virtex-4 RAMB16 primitive.
RAMB16_BITS = 16 * 1024


class BlockRam:
    """A single word-addressable block memory.

    Parameters
    ----------
    words:
        Number of addressable words.
    word_width:
        Width of each word in bits.
    name:
        Optional label used in error messages and reports.
    """

    def __init__(self, words: int, word_width: int, name: str = "bram"):
        if words <= 0:
            raise ConfigurationError(f"words must be positive, got {words}")
        if word_width <= 0:
            raise ConfigurationError(f"word_width must be positive, got {word_width}")
        self.words = int(words)
        self.word_width = int(word_width)
        self.name = name
        self._data = np.zeros((words, word_width), dtype=np.uint8)
        self.read_count = 0
        self.write_count = 0

    @property
    def capacity_bits(self) -> int:
        """Total storage in bits."""
        return self.words * self.word_width

    @property
    def ramb16_count(self) -> int:
        """Number of RAMB16 primitives needed for this capacity."""
        return -(-self.capacity_bits // RAMB16_BITS)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.words:
            raise HardwareModelError(
                f"{self.name}: address {address} out of range (0..{self.words - 1})"
            )

    def write(self, address: int, word: np.ndarray) -> None:
        """Write a full word (a binary vector of ``word_width`` bits)."""
        self._check_address(address)
        word = np.asarray(word)
        if word.shape != (self.word_width,):
            raise HardwareModelError(
                f"{self.name}: word of shape {word.shape} does not match width "
                f"{self.word_width}"
            )
        if word.size and not np.all(np.isin(np.unique(word), (0, 1))):
            raise HardwareModelError(f"{self.name}: words must be binary")
        self._data[address] = word.astype(np.uint8)
        self.write_count += 1

    def read(self, address: int) -> np.ndarray:
        """Read a full word."""
        self._check_address(address)
        self.read_count += 1
        return self._data[address].copy()

    def write_bit(self, address: int, bit_index: int, value: int) -> None:
        """Write a single bit of a word (bit-serial interfaces use this)."""
        self._check_address(address)
        if not 0 <= bit_index < self.word_width:
            raise HardwareModelError(
                f"{self.name}: bit index {bit_index} out of range for width "
                f"{self.word_width}"
            )
        if value not in (0, 1):
            raise HardwareModelError(f"{self.name}: bit value must be 0 or 1")
        self._data[address, bit_index] = value
        self.write_count += 1

    def read_bit(self, address: int, bit_index: int) -> int:
        """Read a single bit of a word."""
        self._check_address(address)
        if not 0 <= bit_index < self.word_width:
            raise HardwareModelError(
                f"{self.name}: bit index {bit_index} out of range for width "
                f"{self.word_width}"
            )
        self.read_count += 1
        return int(self._data[address, bit_index])

    def dump(self) -> np.ndarray:
        """Return a copy of the whole memory as a ``(words, word_width)`` array."""
        return self._data.copy()


class BlockRamBank:
    """A named collection of :class:`BlockRam` instances with usage totals."""

    def __init__(self) -> None:
        self._rams: dict[str, BlockRam] = {}

    def allocate(self, name: str, words: int, word_width: int) -> BlockRam:
        """Create and register a new memory; names must be unique."""
        if name in self._rams:
            raise ConfigurationError(f"a BlockRam named {name!r} already exists")
        ram = BlockRam(words, word_width, name=name)
        self._rams[name] = ram
        return ram

    def __getitem__(self, name: str) -> BlockRam:
        try:
            return self._rams[name]
        except KeyError as exc:
            raise ConfigurationError(f"no BlockRam named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._rams

    @property
    def total_bits(self) -> int:
        """Total allocated capacity in bits."""
        return sum(ram.capacity_bits for ram in self._rams.values())

    @property
    def total_ramb16(self) -> int:
        """Total RAMB16 primitives consumed by all allocations."""
        return sum(ram.ramb16_count for ram in self._rams.values())

    def report(self) -> dict[str, dict[str, int]]:
        """Per-memory capacity report used by the resource estimator."""
        return {
            name: {
                "words": ram.words,
                "word_width": ram.word_width,
                "bits": ram.capacity_bits,
                "ramb16": ram.ramb16_count,
            }
            for name, ram in self._rams.items()
        }
