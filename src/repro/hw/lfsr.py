"""Linear-feedback shift registers (the design's pseudo-random bit source).

The weight-initialisation block loads every neuron with random bits, one bit
per clock cycle (section V-A).  In hardware the cheapest way to do that is a
maximal-length Fibonacci LFSR per neuron (or one LFSR whose taps are shared
and whose seed differs per neuron).  This model implements a standard
Fibonacci LFSR with configurable width and taps, plus the maximal-length tap
sets for the common widths used by the tests.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Maximal-length tap positions (1-based, counted from the MSB like the
#: classic XAPP052 table) for a few common register widths.
MAXIMAL_TAPS: dict[int, tuple[int, ...]] = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
    24: (24, 23, 22, 17),
    32: (32, 22, 2, 1),
}


class Lfsr:
    """A Fibonacci linear-feedback shift register.

    Parameters
    ----------
    width:
        Register width in bits.
    seed:
        Initial register contents; must be non-zero (the all-zero state is
        the LFSR's fixed point and never produces output).
    taps:
        1-based tap positions; defaults to a maximal-length set when the
        width is in :data:`MAXIMAL_TAPS`.
    """

    def __init__(self, width: int = 16, seed: int = 0xACE1, taps: tuple[int, ...] | None = None):
        if width <= 1:
            raise ConfigurationError(f"width must be at least 2 bits, got {width}")
        if taps is None:
            if width not in MAXIMAL_TAPS:
                raise ConfigurationError(
                    f"no default maximal-length taps known for width {width}; "
                    "pass taps explicitly"
                )
            taps = MAXIMAL_TAPS[width]
        if not taps or any(t < 1 or t > width for t in taps):
            raise ConfigurationError(
                f"tap positions must lie in [1, {width}], got {taps}"
            )
        mask = (1 << width) - 1
        seed &= mask
        if seed == 0:
            raise ConfigurationError("LFSR seed must be non-zero")
        self.width = int(width)
        self.taps = tuple(sorted(set(int(t) for t in taps), reverse=True))
        self._mask = mask
        self._state = seed

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    def step(self) -> int:
        """Advance one cycle and return the output bit (the bit shifted out)."""
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (self.width - tap)) & 1
        output = self._state & 1
        self._state = ((self._state >> 1) | (feedback << (self.width - 1))) & self._mask
        return output

    def bits(self, count: int) -> list[int]:
        """Generate ``count`` successive output bits."""
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        return [self.step() for _ in range(count)]

    def period(self, limit: int | None = None) -> int:
        """Measure the sequence period by stepping until the state repeats.

        ``limit`` bounds the search (default ``2**width``); used by the test
        suite to confirm that the default tap sets are maximal length
        (period ``2**width - 1``).
        """
        if limit is None:
            limit = 1 << self.width
        start = self._state
        steps = 0
        while steps < limit:
            self.step()
            steps += 1
            if self._state == start:
                return steps
        return steps
