"""Timing and throughput model (section V-E / V-F).

The paper claims that at 40 MHz the design can "train the binary Self
Organizing Map with up to 25,000 patterns of size 768 bits in a second after
initialization", that the recognition path processes far more signatures per
second than the 30 fps tracker can supply, and that "several thousand
patterns" can be trained "in less than a second".  This module derives those
figures from the block cycle counts so they can be checked against the
cycle-accurate simulation and reported next to the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.clock import PAPER_CLOCK_MHZ
from repro.hw.fpga_bsom import FpgaBsomConfig
from repro.hw.blocks.hamming_unit import HammingDistanceUnit
from repro.hw.blocks.neighbourhood import NeighbourhoodUpdateBlock
from repro.hw.blocks.pattern_input import PatternInputBlock
from repro.hw.blocks.wta import WinnerTakeAllUnit

#: The paper's headline training throughput (patterns per second).
PAPER_PATTERNS_PER_SECOND = 25_000

#: The camera rate the tracker delivers signatures at (frames per second).
CAMERA_FPS = 30.0


@dataclass(frozen=True)
class ThroughputReport:
    """Throughput figures for one design configuration.

    Attributes
    ----------
    clock_mhz:
        Design clock.
    cycles_per_recognition:
        Input + Hamming + WTA cycles for one signature when the stages run
        back to back.
    cycles_per_training_pattern:
        Recognition plus the neighbourhood update.
    cycles_per_pattern_pipelined:
        Cycles per pattern once the input of the next signature overlaps the
        Hamming computation of the current one (the steady-state rate the
        paper's 25,000 patterns/second figure corresponds to).
    recognitions_per_second:
        Steady-state recognition throughput (pipelined).
    training_patterns_per_second:
        Steady-state training throughput (pipelined).
    initialisation_seconds:
        Time to initialise the weights at start-up.
    seconds_to_train:
        Mapping from a few representative pattern counts to training time.
    realtime_margin:
        Ratio of recognition throughput to the camera's signature rate.
    """

    clock_mhz: float
    cycles_per_recognition: int
    cycles_per_training_pattern: int
    cycles_per_pattern_pipelined: int
    recognitions_per_second: float
    training_patterns_per_second: float
    initialisation_seconds: float
    seconds_to_train: dict[int, float]
    realtime_margin: float


class ThroughputModel:
    """Derives throughput figures from the block-level cycle counts."""

    def __init__(self, config: FpgaBsomConfig | None = None):
        self.config = config or FpgaBsomConfig()
        if self.config.clock_mhz <= 0:
            raise ConfigurationError("clock_mhz must be positive")
        self._pattern_input = PatternInputBlock(self.config.n_bits, self.config.image_shape)
        self._hamming = HammingDistanceUnit(self.config.n_neurons, self.config.n_bits)
        self._wta = WinnerTakeAllUnit(self.config.n_neurons)
        self._update = NeighbourhoodUpdateBlock(self.config.n_neurons, self.config.n_bits)

    @property
    def clock_hz(self) -> float:
        return self.config.clock_mhz * 1e6

    def cycles_per_recognition(self) -> int:
        """Input + Hamming + WTA, fully sequential."""
        return (
            self._pattern_input.cycles_required
            + self._hamming.cycles_required
            + self._wta.cycles_required
        )

    def cycles_per_training_pattern(self) -> int:
        """Sequential training pass: recognition plus the weight update."""
        return self.cycles_per_recognition() + self._update.cycles_required

    def cycles_per_pattern_pipelined(self) -> int:
        """Steady-state cycles per pattern with input/compute overlap.

        The pattern-input block runs in parallel with the WTA block (the
        paper lists them among the three blocks that run concurrently), so
        in steady state a new pattern completes every ``max(input, Hamming)
        + WTA`` cycles; with a 768-bit vector and a 7-cycle tree that is
        775 cycles, never more than ~1,600 for the sequential bound.
        """
        overlap = max(
            self._pattern_input.cycles_required, self._hamming.cycles_required
        )
        return overlap + self._wta.cycles_required

    def patterns_per_second(self, cycles_per_pattern: int) -> float:
        """Convert a per-pattern cycle count into patterns per second."""
        if cycles_per_pattern <= 0:
            raise ConfigurationError("cycles_per_pattern must be positive")
        return self.clock_hz / cycles_per_pattern

    def report(self, training_counts: tuple[int, ...] = (1_000, 2_248, 10_000, 25_000)) -> ThroughputReport:
        """Build the full throughput report."""
        pipelined = self.cycles_per_pattern_pipelined()
        training_cycles = self.cycles_per_training_pattern()
        # During training only the pattern input can be hidden (behind the
        # Hamming computation of the current pattern); the weight update must
        # finish before the next pattern's distances are evaluated, so the
        # steady-state training rate is max(input, Hamming) + WTA + update
        # cycles per pattern.  At 40 MHz and 768 bits that is 1,543 cycles,
        # i.e. just under 26,000 patterns per second -- the paper's "up to
        # 25,000 patterns ... in a second".
        training_pipelined = pipelined + self._update.cycles_required
        recognitions_per_second = self.patterns_per_second(pipelined)
        training_per_second = self.patterns_per_second(training_pipelined)
        return ThroughputReport(
            clock_mhz=self.config.clock_mhz,
            cycles_per_recognition=self.cycles_per_recognition(),
            cycles_per_training_pattern=training_cycles,
            cycles_per_pattern_pipelined=pipelined,
            recognitions_per_second=recognitions_per_second,
            training_patterns_per_second=training_per_second,
            initialisation_seconds=self.config.n_bits / self.clock_hz,
            seconds_to_train={
                count: count * training_pipelined / self.clock_hz
                for count in training_counts
            },
            realtime_margin=recognitions_per_second / CAMERA_FPS,
        )


def paper_throughput_report() -> ThroughputReport:
    """The throughput report for the paper's exact configuration (40 MHz, 40x768)."""
    return ThroughputModel(FpgaBsomConfig(clock_mhz=PAPER_CLOCK_MHZ)).report()
