"""Bit-serial Hamming distance computation unit (section V-C, equation 3).

"The Hamming distance between the input vector x and a neuron w_j ... is a
bitwise operation, and hence takes as many clock cycles as there are bits in
the input vector.  Since the Hamming distance for all the 40 neurons are
computed in parallel, it takes exactly 768 clock cycles to compute the
Hamming distance for all the neurons in the network."

Components whose care bit is 0 (the ``#`` state) contribute nothing to the
distance, exactly as in equation 3.  Each neuron's accumulator is
``ceil(log2(n_bits + 1))`` bits wide -- 10 bits for 768, matching the
"forty 10 bit Hamming distances" in figure 4.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, HardwareModelError
from repro.hw.clock import ClockDomain


class HammingDistanceUnit:
    """Computes masked Hamming distances for all neurons in parallel.

    Parameters
    ----------
    n_neurons, n_bits:
        Design dimensions.
    bit_serial:
        When ``True`` the unit iterates bit by bit exactly as the hardware
        does (slower in simulation, used by the equivalence tests); when
        ``False`` the result is computed vectorised while charging the same
        number of cycles.
    """

    def __init__(self, n_neurons: int, n_bits: int, *, bit_serial: bool = False):
        if n_neurons <= 0 or n_bits <= 0:
            raise ConfigurationError("n_neurons and n_bits must be positive")
        self.n_neurons = int(n_neurons)
        self.n_bits = int(n_bits)
        self.bit_serial = bool(bit_serial)

    @property
    def cycles_required(self) -> int:
        """One cycle per bit, independent of the number of neurons."""
        return self.n_bits

    @property
    def counter_width(self) -> int:
        """Width of each per-neuron distance accumulator (10 bits for 768)."""
        return int(math.ceil(math.log2(self.n_bits + 1)))

    def compute(
        self,
        pattern: np.ndarray,
        value_plane: np.ndarray,
        care_plane: np.ndarray,
        clock: ClockDomain | None = None,
    ) -> np.ndarray:
        """Return the masked Hamming distance of every neuron to ``pattern``.

        Parameters
        ----------
        pattern:
            Binary input vector of length ``n_bits``.
        value_plane, care_plane:
            ``(n_neurons, n_bits)`` binary matrices (the BlockRAM contents).
        clock:
            Optional clock to charge the ``n_bits`` cycles to.
        """
        pattern = np.asarray(pattern, dtype=np.uint8)
        if pattern.shape != (self.n_bits,):
            raise DimensionMismatchError(self.n_bits, pattern.size, "input pattern")
        value_plane = np.asarray(value_plane, dtype=np.uint8)
        care_plane = np.asarray(care_plane, dtype=np.uint8)
        expected = (self.n_neurons, self.n_bits)
        if value_plane.shape != expected or care_plane.shape != expected:
            raise HardwareModelError(
                f"weight planes must have shape {expected}, got "
                f"{value_plane.shape} and {care_plane.shape}"
            )
        if self.bit_serial:
            accumulators = np.zeros(self.n_neurons, dtype=np.int64)
            for bit_index in range(self.n_bits):
                mismatch = (value_plane[:, bit_index] != pattern[bit_index]) & (
                    care_plane[:, bit_index] == 1
                )
                accumulators += mismatch
            distances = accumulators
        else:
            mismatch = (value_plane != pattern[np.newaxis, :]) & (care_plane == 1)
            distances = mismatch.sum(axis=1).astype(np.int64)
        if clock is not None:
            clock.tick(self.cycles_required)
        return distances
