"""The five hardware blocks of the FPGA design (figure 4).

Each module models one block of the paper's architecture:

* :mod:`repro.hw.blocks.weight_init` -- random weight initialisation
  (section V-A; 768 cycles),
* :mod:`repro.hw.blocks.pattern_input` -- the camera/pattern input shift
  register (section V-B; 768 cycles),
* :mod:`repro.hw.blocks.hamming_unit` -- the bit-serial parallel Hamming
  distance computation (section V-C; 768 cycles for all 40 neurons),
* :mod:`repro.hw.blocks.wta` -- the comparator-tree winner-take-all unit
  (figure 5; 7 cycles for 40 neurons),
* :mod:`repro.hw.blocks.neighbourhood` -- the neighbourhood selection and
  neuron update unit (section V-D),
* :mod:`repro.hw.blocks.display` -- the VGA output block (section V-E).
"""

from repro.hw.blocks.weight_init import WeightInitialisationBlock
from repro.hw.blocks.pattern_input import PatternInputBlock
from repro.hw.blocks.hamming_unit import HammingDistanceUnit
from repro.hw.blocks.wta import WinnerTakeAllUnit
from repro.hw.blocks.neighbourhood import NeighbourhoodUpdateBlock
from repro.hw.blocks.display import VgaDisplayBlock

__all__ = [
    "WeightInitialisationBlock",
    "PatternInputBlock",
    "HammingDistanceUnit",
    "WinnerTakeAllUnit",
    "NeighbourhoodUpdateBlock",
    "VgaDisplayBlock",
]
