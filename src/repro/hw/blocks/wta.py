"""Winner-take-all comparator tree (section V-C, figure 5).

"The design uses a series of comparators to select the minimum of a pair of
two input Hamming distances.  For an implementation with 40 values, the
design takes exactly seven clock cycles to compute the node with the minimum
Hamming distance."

The model builds a balanced binary comparator tree over the distances padded
to the next power of two.  Each tree level takes one clock cycle, and a
final register stage latches the winner, so a 40-neuron design needs
``log2(64) + 1 = 7`` cycles, matching the paper.  Ties are broken towards
the lower neuron index (the earlier input of each comparator pair wins),
which is also the tie-break the software map uses, so hardware and software
always agree on the winner.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hw.clock import ClockDomain


class WinnerTakeAllUnit:
    """Selects the neuron with the minimum Hamming distance.

    Parameters
    ----------
    n_neurons:
        Number of distance inputs (40 in the paper).
    """

    def __init__(self, n_neurons: int):
        if n_neurons <= 0:
            raise ConfigurationError(f"n_neurons must be positive, got {n_neurons}")
        self.n_neurons = int(n_neurons)

    @property
    def padded_inputs(self) -> int:
        """Inputs padded to the next power of two (64 for 40 neurons)."""
        return 1 << max(int(math.ceil(math.log2(self.n_neurons))), 0) if self.n_neurons > 1 else 1

    @property
    def tree_depth(self) -> int:
        """Number of comparator levels in the tree."""
        return int(math.log2(self.padded_inputs)) if self.padded_inputs > 1 else 0

    @property
    def cycles_required(self) -> int:
        """One cycle per tree level plus the output register (7 for 40)."""
        return self.tree_depth + 1

    def comparators_per_stage(self) -> list[int]:
        """Number of two-input comparators active in each tree level."""
        counts = []
        width = self.padded_inputs
        while width > 1:
            width //= 2
            counts.append(width)
        return counts

    @property
    def total_comparators(self) -> int:
        """Total comparators instantiated by the tree."""
        return sum(self.comparators_per_stage())

    def select(
        self, distances: np.ndarray, clock: ClockDomain | None = None
    ) -> tuple[int, int]:
        """Return ``(winner_index, minimum_distance)`` for ``distances``.

        The reduction is performed level by level exactly as the comparator
        tree would, so the tie-break behaviour is the hardware's.
        """
        distances = np.asarray(distances)
        if distances.shape != (self.n_neurons,):
            raise DimensionMismatchError(self.n_neurons, distances.size, "distance vector")
        # Pad with a sentinel larger than any achievable distance.
        sentinel = int(distances.max()) + 1 if distances.size else 1
        padded = np.full(self.padded_inputs, sentinel, dtype=np.int64)
        padded[: self.n_neurons] = distances
        indices = np.arange(self.padded_inputs, dtype=np.int64)

        while padded.size > 1:
            left_values, right_values = padded[0::2], padded[1::2]
            left_indices, right_indices = indices[0::2], indices[1::2]
            take_left = left_values <= right_values
            padded = np.where(take_left, left_values, right_values)
            indices = np.where(take_left, left_indices, right_indices)

        if clock is not None:
            clock.tick(self.cycles_required)
        return int(indices[0]), int(padded[0])
