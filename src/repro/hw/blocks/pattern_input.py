"""Pattern input block (section V-B).

"This block is used to acquire the binary input vector (or binary image)
from an external camera.  The size of the input vector, 768 (taken from a
binary image of size 32x24), is pre-programmed and the input is complete
when a total of 768 bits is read from the camera."

The model accepts either a flat 768-bit signature or a 24x32 binary image
(the raster the camera interface actually delivers) and shifts it into the
input register one bit per cycle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, HardwareModelError
from repro.hw.clock import ClockDomain


class PatternInputBlock:
    """Shift register that captures one binary signature per acquisition.

    Parameters
    ----------
    n_bits:
        Length of the input vector (768 in the paper).
    image_shape:
        ``(rows, cols)`` of the binary image the camera streams; its product
        must equal ``n_bits``.
    """

    def __init__(self, n_bits: int = 768, image_shape: tuple[int, int] = (24, 32)):
        if n_bits <= 0:
            raise ConfigurationError(f"n_bits must be positive, got {n_bits}")
        rows, cols = image_shape
        if rows * cols != n_bits:
            raise ConfigurationError(
                f"image shape {image_shape} holds {rows * cols} bits, expected {n_bits}"
            )
        self.n_bits = int(n_bits)
        self.image_shape = (int(rows), int(cols))
        self._register = np.zeros(self.n_bits, dtype=np.uint8)
        self._bits_received = 0
        self.acquisitions = 0

    @property
    def cycles_required(self) -> int:
        """One cycle per input bit."""
        return self.n_bits

    @property
    def register(self) -> np.ndarray:
        """Current contents of the input register."""
        return self._register.copy()

    @property
    def acquisition_complete(self) -> bool:
        """Whether the last acquisition shifted in all bits."""
        return self._bits_received == self.n_bits

    def acquire(self, pattern: np.ndarray, clock: ClockDomain | None = None) -> np.ndarray:
        """Shift a full signature (or binary image) into the register.

        Returns the captured vector and charges ``n_bits`` cycles.
        """
        pattern = np.asarray(pattern)
        if pattern.ndim == 2:
            if pattern.shape != self.image_shape:
                raise DimensionMismatchError(
                    self.image_shape[0] * self.image_shape[1], pattern.size, "input image"
                )
            pattern = pattern.reshape(-1)
        if pattern.ndim != 1 or pattern.size != self.n_bits:
            raise DimensionMismatchError(self.n_bits, pattern.size, "input pattern")
        if pattern.size and not np.all(np.isin(np.unique(pattern), (0, 1))):
            raise HardwareModelError("input pattern must be binary")
        self._bits_received = 0
        for bit_index in range(self.n_bits):
            self._register[bit_index] = pattern[bit_index]
            self._bits_received += 1
        self.acquisitions += 1
        if clock is not None:
            clock.tick(self.cycles_required)
        return self.register
