"""Weight initialisation block (section V-A).

"This block is used to randomly initialize all the weight vectors in the
network.  All the neurons in the network are initialized in parallel
bit-by-bit; hence it takes as many clock cycles as there are bits in the
binary input vector to complete the initialization."

The model drives one LFSR per neuron (each with a distinct non-zero seed)
and writes one bit of every neuron's weight vector per clock cycle into the
value-plane BlockRAM, setting the care plane to all ones (the initial
weights are plain random binary values; ``#`` states only appear later,
through training).
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError
from repro.hw.bram import BlockRam
from repro.hw.clock import ClockDomain
from repro.hw.lfsr import Lfsr


class WeightInitialisationBlock:
    """Initialises all neurons with random binary weights, bit-serially.

    Parameters
    ----------
    n_neurons, n_bits:
        Design dimensions (40 neurons of 768 bits in the paper).
    lfsr_width:
        Width of each per-neuron LFSR.
    seed:
        Seed used to derive the per-neuron LFSR seeds.
    """

    def __init__(
        self,
        n_neurons: int,
        n_bits: int,
        *,
        lfsr_width: int = 16,
        seed: SeedLike = None,
    ):
        if n_neurons <= 0 or n_bits <= 0:
            raise ConfigurationError("n_neurons and n_bits must be positive")
        self.n_neurons = int(n_neurons)
        self.n_bits = int(n_bits)
        rng = as_generator(seed)
        max_state = (1 << lfsr_width) - 1
        self._lfsrs = [
            Lfsr(width=lfsr_width, seed=int(rng.integers(1, max_state + 1)))
            for _ in range(self.n_neurons)
        ]

    @property
    def cycles_required(self) -> int:
        """Exactly one cycle per weight bit (768 in the paper)."""
        return self.n_bits

    def run(
        self,
        value_plane: BlockRam,
        care_plane: BlockRam,
        clock: ClockDomain | None = None,
    ) -> int:
        """Initialise the weight memories; returns the cycles consumed."""
        if value_plane.words != self.n_neurons or value_plane.word_width != self.n_bits:
            raise ConfigurationError(
                "value plane geometry does not match the design "
                f"({value_plane.words}x{value_plane.word_width} vs "
                f"{self.n_neurons}x{self.n_bits})"
            )
        if care_plane.words != self.n_neurons or care_plane.word_width != self.n_bits:
            raise ConfigurationError("care plane geometry does not match the design")
        values = np.zeros((self.n_neurons, self.n_bits), dtype=np.uint8)
        for bit_index in range(self.n_bits):
            for neuron, lfsr in enumerate(self._lfsrs):
                values[neuron, bit_index] = lfsr.step()
        for neuron in range(self.n_neurons):
            value_plane.write(neuron, values[neuron])
            care_plane.write(neuron, np.ones(self.n_bits, dtype=np.uint8))
        if clock is not None:
            clock.tick(self.cycles_required)
        return self.cycles_required
