"""VGA output display block (section V-E).

"The output display block displays the neurons (weights) as a binary image
on an external Video Graphics Array (VGA) for visual verification.  It runs
in parallel with the input and WTA blocks.  It runs at the refresh rate for
the VGA used, typically 60Hz."

The model renders each neuron's weight vector as a small binary tile (the
32x24 image the signature was streamed in as) arranged in a grid, producing
the frame a monitor would show.  ``#`` bits are rendered at an intermediate
grey level so the "visual verification" the paper mentions can distinguish
committed from wildcard bits.  Because the block runs in its own refresh
loop it never charges cycles to the training/recognition path; it only
reports how many pixel clocks one refresh costs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, HardwareModelError


class VgaDisplayBlock:
    """Renders the neuron weights as a tiled binary image.

    Parameters
    ----------
    n_neurons:
        Number of neurons to display.
    tile_shape:
        ``(rows, cols)`` of each neuron's weight image (24x32 in the paper).
    resolution:
        VGA output resolution ``(height, width)``.
    refresh_hz:
        Monitor refresh rate.
    """

    def __init__(
        self,
        n_neurons: int,
        tile_shape: tuple[int, int] = (24, 32),
        resolution: tuple[int, int] = (480, 640),
        refresh_hz: float = 60.0,
    ):
        if n_neurons <= 0:
            raise ConfigurationError(f"n_neurons must be positive, got {n_neurons}")
        if refresh_hz <= 0:
            raise ConfigurationError(f"refresh_hz must be positive, got {refresh_hz}")
        rows, cols = tile_shape
        if rows <= 0 or cols <= 0:
            raise ConfigurationError(f"tile_shape must be positive, got {tile_shape}")
        self.n_neurons = int(n_neurons)
        self.tile_shape = (int(rows), int(cols))
        self.resolution = (int(resolution[0]), int(resolution[1]))
        self.refresh_hz = float(refresh_hz)
        self.frames_rendered = 0

    @property
    def tiles_per_row(self) -> int:
        """How many neuron tiles fit across the display."""
        return max(self.resolution[1] // self.tile_shape[1], 1)

    @property
    def grid_shape(self) -> tuple[int, int]:
        """``(rows, cols)`` of the neuron tile grid."""
        cols = self.tiles_per_row
        rows = int(math.ceil(self.n_neurons / cols))
        return rows, cols

    @property
    def pixel_clocks_per_frame(self) -> int:
        """Pixel clocks needed to scan one full frame."""
        return self.resolution[0] * self.resolution[1]

    def seconds_per_frame(self) -> float:
        """Wall-clock time of one refresh at the configured rate."""
        return 1.0 / self.refresh_hz

    def render(self, value_plane: np.ndarray, care_plane: np.ndarray) -> np.ndarray:
        """Render the weight planes into a greyscale frame.

        Committed 1-bits render white (255), committed 0-bits black (0) and
        ``#`` bits mid-grey (128).  The returned array has the tile grid's
        size, not the full VGA resolution (the remainder of the frame is
        blank and carries no information).
        """
        value_plane = np.asarray(value_plane, dtype=np.uint8)
        care_plane = np.asarray(care_plane, dtype=np.uint8)
        rows, cols = self.tile_shape
        expected = (self.n_neurons, rows * cols)
        if value_plane.shape != expected or care_plane.shape != expected:
            raise HardwareModelError(
                f"weight planes must have shape {expected}, got {value_plane.shape} "
                f"and {care_plane.shape}"
            )
        grid_rows, grid_cols = self.grid_shape
        frame = np.zeros((grid_rows * rows, grid_cols * cols), dtype=np.uint8)
        for neuron in range(self.n_neurons):
            tile = np.where(
                care_plane[neuron] == 1, value_plane[neuron] * 255, 128
            ).reshape(rows, cols)
            r, c = divmod(neuron, grid_cols)
            frame[r * rows : (r + 1) * rows, c * cols : (c + 1) * cols] = tile
        self.frames_rendered += 1
        return frame
