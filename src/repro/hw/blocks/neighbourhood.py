"""Neighbourhood selection and neuron update block (section V-D).

"This block is used to select the neighbourhood of the winning neuron and to
update the neurons in the specified region.  The size of the neighbourhood
reduces as training progresses.  In the hardware implementation the maximum
size of the neighbourhood is set to 4."

The block applies the same tri-state rules as the software bSOM
(:mod:`repro.core.bsom`) to the weight bit-planes held in BlockRAM: the full
rule for the winner and -- by default -- the stochastically attenuated rule
for neighbours, driven by an LFSR-derived bit stream in place of the
software generator.  The update walks the weight vectors bit-serially, so it
charges one cycle per bit regardless of the neighbourhood size (all selected
neurons are updated in parallel, like the Hamming unit).
"""

from __future__ import annotations

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.core.topology import (
    LinearTopology,
    NeighbourhoodSchedule,
    StepwiseNeighbourhoodSchedule,
    Topology,
)
from repro.core.bsom import BsomUpdateRule
from repro.errors import ConfigurationError, HardwareModelError
from repro.hw.bram import BlockRam
from repro.hw.clock import ClockDomain


class NeighbourhoodUpdateBlock:
    """Updates the winner and its neighbourhood in the weight BlockRAMs.

    Parameters
    ----------
    n_neurons, n_bits:
        Design dimensions.
    topology:
        Neuron arrangement (the FPGA uses a linear chain).
    schedule:
        Neighbourhood radius schedule (stepwise 4..1 in the paper).
    update_rule:
        Tri-state update rules, shared with the software implementation.
    seed:
        Seed for the pseudo-random bit stream used by the stochastic
        neighbour rule.
    """

    def __init__(
        self,
        n_neurons: int,
        n_bits: int,
        *,
        topology: Topology | None = None,
        schedule: NeighbourhoodSchedule | None = None,
        update_rule: BsomUpdateRule | None = None,
        seed: SeedLike = None,
    ):
        if n_neurons <= 0 or n_bits <= 0:
            raise ConfigurationError("n_neurons and n_bits must be positive")
        self.n_neurons = int(n_neurons)
        self.n_bits = int(n_bits)
        self.topology = topology or LinearTopology(n_neurons)
        self.schedule = schedule or StepwiseNeighbourhoodSchedule(max_radius=4)
        self.update_rule = update_rule or BsomUpdateRule()
        self._rng = as_generator(seed)

    @property
    def cycles_required(self) -> int:
        """One cycle per weight bit (all selected neurons update in parallel)."""
        return self.n_bits

    def _apply_rows(
        self,
        values: np.ndarray,
        cares: np.ndarray,
        pattern: np.ndarray,
        select: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply the full tri-state rule to the selected bits of the rows."""
        dont_care = (cares == 0) & select
        mismatch = (cares == 1) & (values != pattern[np.newaxis, :]) & select
        values = values.copy()
        cares = cares.copy()
        # '#' bits commit to the input value.
        values[dont_care] = np.broadcast_to(pattern, values.shape)[dont_care]
        cares[dont_care] = 1
        # Mismatching committed bits fall back to '#'.
        cares[mismatch] = 0
        values[mismatch] = 0
        return values, cares

    def update(
        self,
        winner: int,
        pattern: np.ndarray,
        value_plane: BlockRam,
        care_plane: BlockRam,
        iteration: int,
        total_iterations: int,
        clock: ClockDomain | None = None,
    ) -> np.ndarray:
        """Update the winner and its neighbourhood; returns the updated indices."""
        if not 0 <= winner < self.n_neurons:
            raise HardwareModelError(
                f"winner index {winner} out of range for {self.n_neurons} neurons"
            )
        pattern = np.asarray(pattern, dtype=np.uint8)
        if pattern.shape != (self.n_bits,):
            raise HardwareModelError(
                f"pattern of length {pattern.size} does not match {self.n_bits}-bit design"
            )
        radius = self.schedule.radius(iteration, total_iterations)
        members = self.topology.neighbourhood(winner, radius)

        values = np.vstack([value_plane.read(int(j)) for j in members])
        cares = np.vstack([care_plane.read(int(j)) for j in members])

        rule = self.update_rule
        select = np.ones(values.shape, dtype=bool)
        if rule.neighbour_rule == "commit":
            is_winner = members == winner
            select[~is_winner] = False
            # Commit rule: only '#' bits update for neighbours.
            select[~is_winner] = (cares[~is_winner] == 0)
        elif rule.neighbour_rule == "stochastic":
            for row, neuron in enumerate(members):
                if neuron == winner:
                    continue
                distance = self.topology.grid_distance(winner, int(neuron))
                probability = rule.neighbour_strength ** distance
                select[row] = self._rng.random(self.n_bits) < probability
        if rule.winner_rule == "commit":
            winner_row = int(np.flatnonzero(members == winner)[0])
            select[winner_row] = cares[winner_row] == 0

        values, cares = self._apply_rows(values, cares, pattern, select)
        for row, neuron in enumerate(members):
            value_plane.write(int(neuron), values[row])
            care_plane.write(int(neuron), cares[row])
        if clock is not None:
            clock.tick(self.cycles_required)
        return members
