"""The streaming inference service front-end.

:class:`StreamingInferenceService` is the piece a multi-camera deployment
talks to.  Per request it:

1. checks the signature LRU cache (packed-signature key) and answers
   immediately on a hit -- a repeated silhouette never touches the SOM,
2. coalesces the request onto an identical *in-flight* packed signature
   when one exists (cross-request deduplication: one kernel execution fans
   out to every waiting future, counted as ``dedup_hits``),
3. otherwise admits the request against a service-wide pending budget
   (raising :class:`~repro.errors.ServiceOverloadedError` when saturated --
   backpressure instead of unbounded queues),
4. hands it to the micro-batching scheduler, which cuts size- or
   deadline-bounded batches per model, and
5. routes each batch through the sharded model registry to a worker
   thread, whose completion path resolves the futures (followers
   included), fills the cache and records the telemetry.

Model lifecycle: :meth:`register_model` / :meth:`swap_model` /
:meth:`evict_model` accept fitted classifiers or
:class:`~repro.core.snapshot.ModelSnapshot` objects.  ``swap_model`` is the
zero-drop hot-reload -- shards flip to the new model at a micro-batch
boundary while queued requests ride through untouched -- and every swap or
eviction bumps the model's *generation* so the completion path never
memoises a prediction computed by a superseded map.

A background dispatcher thread enforces the deadline flushes so a lone
low-rate stream still sees bounded latency.  The service is a context
manager: ``with StreamingInferenceService(...) as service: ...``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.classifier import BatchPrediction, SomClassifier
from repro.core.serialization import PathLike
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ModelEvictedError,
    ServiceError,
    ServiceOverloadedError,
    ShardFailedError,
)
from repro.obs import Observability
from repro.serve.batching import MicroBatch, MicroBatchScheduler
from repro.serve.cache import CachedOutcome, SignatureLruCache
from repro.serve.metrics import MetricsSnapshot, ServiceMetrics
from repro.serve.registry import ModelRegistry, ModelSource
from repro.serve.resilience import (
    BreakerBoard,
    BreakerConfig,
    FaultInjector,
    RetryPolicy,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.serve.request import (
    ClassificationRequest,
    ClassificationResponse,
    PendingResult,
    resolve_follower,
    resolve_requests,
)
from repro.serve.rollout import RolloutConfig, RolloutManager
from repro.serve.shard import WorkerShard
from repro.signatures.packing import packed_signature_words


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the streaming service.

    Attributes
    ----------
    batch_size:
        Micro-batch size target; a full lane flushes immediately.
    max_delay_ms:
        Deadline bound: no admitted request waits longer than this for its
        batch to be cut.
    cache_capacity:
        Signature LRU cache entries (0 disables caching).
    n_shards:
        Worker shards per registered model.
    routing_policy:
        ``"round_robin"`` or ``"least_loaded"`` shard selection.
    shard_queue_capacity:
        Bounded batch queue per shard.
    max_pending:
        Service-wide cap on admitted-but-unresolved requests; submissions
        beyond it are refused with :class:`ServiceOverloadedError`.
    distance_backend:
        Distance-backend selection applied to every registered model's SOM
        (``"gemm"``, ``"packed"``, ``"naive"``, ``"auto"``, or a backend
        instance); ``None`` keeps each model's own choice.  Only used when
        the service builds its own registry.
    trace_sample_every:
        Trace every Nth request (``1`` = all, ``0`` = tracing off).  Only
        used when the service builds its own :class:`~repro.obs.Observability`;
        a passed-in ``obs`` keeps its own sampling rate.
    default_deadline_s:
        Deadline budget applied to every submit that does not pass its own
        ``deadline_s`` (``None`` = no deadline).  Expired requests are shed
        with :class:`~repro.errors.DeadlineExceededError` before batching
        and again before kernel launch.
    retry:
        :class:`~repro.serve.resilience.RetryPolicy` for transient submit
        refusals (pending budget, open circuits).  ``None`` (default)
        surfaces :class:`ServiceOverloadedError` to the caller on the first
        refusal, exactly as before.
    breaker:
        :class:`~repro.serve.resilience.BreakerConfig` enabling
        per-(model, shard) circuit breakers; the router skips open shards
        and the service degrades to stale cache answers when every shard
        of a model is open.  ``None`` (default) disables breakers.
    supervisor:
        :class:`~repro.serve.resilience.SupervisorConfig` for the shard
        watchdog (dead/wedged worker detection + bounded restarts).  On by
        default with conservative timeouts; ``None`` disables supervision.
    fault_injector:
        :class:`~repro.serve.resilience.FaultInjector` threaded into the
        cache, registry and shards -- chaos tests only, ``None`` in
        production.  Only used when the service builds its own registry;
        a passed-in registry keeps its own injector.
    """

    batch_size: int = 32
    max_delay_ms: float = 5.0
    cache_capacity: int = 2048
    n_shards: int = 2
    routing_policy: str = "round_robin"
    shard_queue_capacity: int = 8
    max_pending: int = 1024
    distance_backend: Optional[str] = None
    trace_sample_every: int = 16
    default_deadline_s: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    breaker: Optional[BreakerConfig] = None
    supervisor: Optional[SupervisorConfig] = SupervisorConfig()
    fault_injector: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ConfigurationError(
                f"batch_size must be positive, got {self.batch_size}"
            )
        if self.max_delay_ms <= 0:
            raise ConfigurationError(
                f"max_delay_ms must be positive, got {self.max_delay_ms}"
            )
        if self.max_pending <= 0:
            raise ConfigurationError(
                f"max_pending must be positive, got {self.max_pending}"
            )
        if self.trace_sample_every < 0:
            raise ConfigurationError(
                "trace_sample_every must be >= 0 (0 disables tracing), "
                f"got {self.trace_sample_every}"
            )
        if self.default_deadline_s is not None and self.default_deadline_s <= 0:
            raise ConfigurationError(
                f"default_deadline_s must be positive or None, "
                f"got {self.default_deadline_s}"
            )


class StreamingInferenceService:
    """Micro-batched, sharded, cached classification for camera streams.

    Parameters
    ----------
    registry:
        A :class:`ModelRegistry` to serve from; built from ``config`` when
        omitted.  The service binds the registry's completion path to its
        own cache/metrics pipeline.
    config:
        Service configuration (defaults are sensible for tests/demos).
    clock:
        Monotonic time source, injectable for tests.
    obs:
        The :class:`~repro.obs.Observability` bundle (metric registry +
        tracer + event log) the service reports through.  Built from
        ``config.trace_sample_every`` and ``clock`` when omitted; pass a
        shared instance to scrape several services with one exporter.
    """

    def __init__(
        self,
        registry: Optional[ModelRegistry] = None,
        config: Optional[ServiceConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        obs: Optional[Observability] = None,
    ):
        self.config = config or ServiceConfig()
        self.obs = obs if obs is not None else Observability(
            sample_every=self.config.trace_sample_every, clock=clock
        )
        self.registry = registry or ModelRegistry(
            n_shards=self.config.n_shards,
            policy=self.config.routing_policy,
            queue_capacity=self.config.shard_queue_capacity,
            backend=self.config.distance_backend,
            clock=clock,
            fault_injector=self.config.fault_injector,
        )
        self.registry.bind_completion(
            self._on_batch_done, self._on_batch_failed, self._on_model_retired
        )
        self.registry.bind_events(self.obs.events)
        self._clock = clock
        self.scheduler = MicroBatchScheduler(
            batch_size=self.config.batch_size,
            max_delay_s=self.config.max_delay_ms / 1e3,
            clock=clock,
        )
        self.cache = SignatureLruCache(
            self.config.cache_capacity, fault_injector=self.config.fault_injector
        )
        self.metrics = ServiceMetrics(registry=self.obs.registry)
        self._board: Optional[BreakerBoard] = None
        if self.config.breaker is not None:
            self._board = BreakerBoard(
                self.config.breaker,
                clock=clock,
                registry=self.obs.registry,
                events=self.obs.events,
            )
            self.registry.bind_breakers(self._board.allow)
        self._rollout: Optional[RolloutManager] = None
        self._supervisor: Optional[ShardSupervisor] = None
        if self.config.supervisor is not None:
            self._supervisor = ShardSupervisor(
                self.registry,
                config=self.config.supervisor,
                clock=clock,
                on_restart=self._on_shard_restart,
                on_disabled=self._on_shard_disabled,
            )
        self.obs.registry.gauge(
            "serve_pending_requests",
            fn=lambda: float(self.pending_requests),
            help="Admitted-but-unresolved requests (live, read at collection)",
        )
        self._pending = 0
        self._pending_lock = threading.Lock()
        # In-flight dedup table: (model, packed-signature key) -> the
        # primary request whose kernel execution will answer the group.
        self._inflight: dict[tuple[str, bytes], ClassificationRequest] = {}
        self._inflight_lock = threading.Lock()
        # Per-model generation counters, bumped on swap/evict; completion
        # only memoises outcomes whose request generation is still current,
        # so a hot-swap can never leave a superseded prediction in the cache.
        self._generations: dict[str, int] = {}
        self._gen_lock = threading.Lock()
        self._next_request_id = 0
        self._id_lock = threading.Lock()
        self._running = False
        # Guards the running flag against the submit path: stop() flips it
        # under this lock, and submit() enqueues under it, so no request can
        # reach the scheduler after stop() has drained the lanes (a stranded
        # request would leave its future unresolved until the caller's
        # timeout).
        self._state_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._wake = threading.Event()
        self._dispatcher: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "StreamingInferenceService":
        if self._running:
            return self
        self._stop_event.clear()
        self.registry.start()
        if self._supervisor is not None:
            self._supervisor.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-dispatcher", daemon=True
        )
        self._running = True
        self._dispatcher.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._state_lock:
            if not self._running:
                return
            self._running = False
        # The watchdog goes first: a restart racing the shard teardown
        # below would resurrect workers the registry is trying to join.
        if self._supervisor is not None:
            self._supervisor.stop()
        # Rollouts next, while the registry is still up: demoting an
        # in-flight candidate drains and evicts its canary group cleanly.
        if self._rollout is not None:
            self._rollout.stop()
        self._stop_event.set()
        self._wake.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
            self._dispatcher = None
        # Push whatever is still buffered through the shards, then drain them.
        for batch in self.scheduler.drain():
            self._dispatch(batch)
        leaked = self.registry.stop(timeout)
        if leaked:
            self.metrics.record_shard_leak(len(leaked))

    def __enter__(self) -> "StreamingInferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------------ #
    # Model lifecycle (registry + cache/generation bookkeeping)
    # ------------------------------------------------------------------ #
    def register_model(self, name: str, model: ModelSource) -> None:
        """Register a fitted classifier or :class:`ModelSnapshot` under ``name``."""
        self.registry.register(name, model)

    def load_model(self, name: str, path: PathLike) -> SomClassifier:
        return self.registry.load(name, path)

    def swap_model(self, name: str, model: ModelSource) -> SomClassifier:
        """Hot-reload ``name`` with zero dropped requests; return the old model.

        Delegates the shard flip to :meth:`ModelRegistry.swap` (queued
        batches ride through; the in-flight batch finishes on the old map);
        the registry's ``retired`` hook then bumps the model's generation
        and invalidates its cache entries so no memoised outcome of the
        superseded map survives -- that hook also covers swaps issued on
        ``service.registry`` directly.  Requests already queued resolve
        successfully, scored by whichever map was current at their
        micro-batch boundary -- exactly the semantics of reflashing the
        FPGA between patterns.
        """
        previous = self.registry.swap(name, model)  # raises UnknownModelError
        self.metrics.record_swap()
        return previous

    def evict_model(self, name: str) -> SomClassifier:
        """Unregister ``name``; every queued future fails promptly and clearly.

        Shard-queued batches are failed by the registry with
        :class:`~repro.errors.ModelEvictedError`; requests still buffered
        in this service's scheduler lane are cut and failed here the same
        way, so no future is left waiting for a deadline flush to discover
        that the name no longer routes.
        """
        classifier = self.registry.evict(name)  # fires _on_model_retired
        lane = self.scheduler.cut_lane(name)
        if lane is not None:
            self._fail_batch(
                lane, ModelEvictedError(name, self.registry.names()), shed=False
            )
        return classifier

    def enable_rollouts(
        self, config: Optional[RolloutConfig] = None
    ) -> RolloutManager:
        """Attach the guarded-rollout machinery (idempotent; returns it).

        Once enabled, :meth:`RolloutManager.begin` shadow-evaluates
        candidates against live traffic, the configured
        :class:`~repro.serve.rollout.RolloutPolicy` promotes or demotes
        them automatically, and -- when circuit breakers are configured and
        ``rollback_on_breaker`` is set -- a breaker opening on a freshly
        promoted model swaps the previous snapshot back in.
        """
        if self._rollout is None:
            self._rollout = RolloutManager(self, config)
            if self._board is not None:
                self._board.on_open = self._rollout.on_breaker_open
        return self._rollout

    @property
    def rollouts(self) -> Optional[RolloutManager]:
        """The attached :class:`RolloutManager`, or ``None``."""
        return self._rollout

    def _on_model_retired(self, name: str) -> None:
        """Registry hook: a swap/evict displaced ``name``'s classifier.

        Runs after the shards have flipped (or torn down), whichever entry
        point initiated it -- ``swap_model``/``evict_model`` here or
        ``registry.swap``/``registry.evict`` directly.  Bumping the
        generation first blocks further cache fills from pre-swap requests;
        the invalidation then clears anything already memoised.
        """
        self._bump_generation(name)
        dropped = self.cache.invalidate_model(name)
        self.obs.events.emit("cache_invalidate", model=name, dropped_entries=dropped)

    def _bump_generation(self, name: str) -> None:
        with self._gen_lock:
            self._generations[name] = self._generations.get(name, 0) + 1

    def _generation_of(self, name: str) -> int:
        with self._gen_lock:
            return self._generations.get(name, 0)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        signature: np.ndarray,
        *,
        model: str,
        stream_id: str = "",
        deadline_s: Optional[float] = None,
    ) -> PendingResult:
        """Queue one signature for classification; returns its future.

        Cache hits resolve before this method returns.  Raises
        :class:`ServiceOverloadedError` when the service-wide pending
        budget is full (or, as :class:`~repro.errors.CircuitOpenError`,
        when every shard breaker of the model is open and no stale cache
        entry could answer), and :class:`UnknownModelError` for an
        unregistered model name.  Shard-queue saturation is only
        detectable at dispatch time (the batch holds other callers'
        requests and may be cut by the deadline thread), so that flavour
        of backpressure is delivered through the future: ``result()``
        re-raises the :class:`ServiceOverloadedError` for every request of
        the shed batch.  Callers should treat both paths as "retry later";
        :func:`repro.serve.streams.drive_streams` shows the pattern.

        When ``config.retry`` is set, transient submit-time refusals are
        retried here under jittered exponential backoff -- bounded by the
        policy's ``max_attempts`` and by the request's deadline (the
        service never sleeps past ``deadline_at``).  A refused submit
        leaves no admitted state behind, so retries cannot stack orphaned
        requests against the pending budget.

        ``deadline_s`` (defaulting to ``config.default_deadline_s``) is
        the caller's total latency budget: requests that exceed it are
        shed with :class:`~repro.errors.DeadlineExceededError` at dispatch
        or pre-kernel instead of consuming a kernel they can no longer
        use.
        """
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        deadline_at = None if deadline_s is None else self._clock() + deadline_s
        policy = self.config.retry
        attempt = 0
        while True:
            try:
                return self._submit_once(
                    signature,
                    model=model,
                    stream_id=stream_id,
                    deadline_at=deadline_at,
                )
            except ServiceOverloadedError:
                attempt += 1
                if policy is None or attempt >= policy.max_attempts:
                    raise
                delay = policy.delay_s(attempt)
                if deadline_at is not None and self._clock() + delay >= deadline_at:
                    raise  # the backoff would outlive the deadline
                self.metrics.record_retry()
                time.sleep(delay)

    def _submit_once(
        self,
        signature: np.ndarray,
        *,
        model: str,
        stream_id: str,
        deadline_at: Optional[float],
    ) -> PendingResult:
        if not self._running:
            raise ServiceError("the service is not running; call start() first")
        # Canary routing: a logical name under an active traffic split
        # resolves to a concrete version here, once, so lanes, cache keys,
        # dedup keys and the response all carry the version that actually
        # serves the request.  Unrouted names pass through untouched.
        model = self.registry.resolve(model)
        classifier = self.registry.classifier(model)  # raises UnknownModelError
        signature = np.asarray(signature)
        # Validate and pack exactly once: the uint64 words are both the
        # cache key (their raw bytes) and the shard's distance-kernel
        # input, so the signature is never re-packed downstream.
        packed = packed_signature_words(signature)  # validates the bit vector
        key = packed.tobytes()
        if signature.size != classifier.som.n_bits:
            raise ConfigurationError(
                f"model {model!r} expects {classifier.som.n_bits}-bit signatures, "
                f"got {signature.size} bits"
            )
        now = self._clock()
        with self._id_lock:
            request_id = self._next_request_id
            self._next_request_id += 1
        trace = self.obs.tracer.start(
            t=now, model=model, stream_id=stream_id, request_id=request_id
        )

        try:
            outcome = self.cache.get(model, key)
        except Exception:
            # A corrupt entry / codec bug in the cache must degrade to a
            # miss, not fail the request: the SOM can always re-derive the
            # answer.  Counted so an elevated error rate is visible.
            self.metrics.record_cache_error()
            outcome = None
        if outcome is not None:
            self.metrics.record_request()
            self.metrics.record_cache(hit=True)
            pending = PendingResult()
            response = ClassificationResponse(
                label=outcome.label,
                neuron=outcome.neuron,
                distance=outcome.distance,
                rejected=outcome.rejected,
                confidence=outcome.confidence,
                model=model,
                stream_id=stream_id,
                request_id=request_id,
                cached=True,
                latency_s=max(0.0, self._clock() - now),
                trace_id=trace.trace_id if trace is not None else None,
            )
            if trace is not None:
                done = now + response.latency_s
                trace.span("cache", start=now, end=done, hit=True)
                trace.finish("ok", t=done, cached=True, label=response.label)
            pending.set_result(response)
            self.metrics.record_response(response.latency_s)
            return pending

        # Cross-request dedup: an identical packed signature already in
        # flight for this model answers us too.  The follower consumes no
        # pending-budget slot and never reaches a shard -- the primary's
        # one kernel execution fans out to every waiting future.
        with self._inflight_lock:
            primary = self._inflight.get((model, key))
            if primary is not None:
                follower = ClassificationRequest(
                    signature=signature.astype(np.uint8, copy=True),
                    model=model,
                    stream_id=stream_id,
                    request_id=request_id,
                    cache_key=key,
                    enqueued_at=now,
                    packed=packed,
                    generation=primary.generation,
                    trace=trace,
                )
                if trace is not None:
                    # The follower never queues or reaches a shard; its one
                    # span records the coalesce and links to the primary's
                    # kernel span, which does the actual work.
                    span = trace.span(
                        "dedup",
                        start=now,
                        end=self._clock(),
                        primary_request_id=primary.request_id,
                    )
                    if primary.trace is not None:
                        span.add_link(
                            trace_id=primary.trace.trace_id, span="kernel"
                        )
                # Append last: once the follower is visible to the
                # completion path its trace/span state must be final.
                primary.followers.append(follower)
                self.metrics.record_request()
                self.metrics.record_dedup()
                self.obs.events.emit(
                    "dedup",
                    model=model,
                    request_id=request_id,
                    primary_request_id=primary.request_id,
                )
                return follower.pending

        if self._board is not None:
            shard_names = self.registry.shard_names(model)
            if not self._board.would_allow_any(model, shard_names):
                # Every shard breaker of the model is open: degrade to the
                # stale cache tier if it can answer (flagged stale=True),
                # otherwise shed with CircuitOpenError so the retry policy
                # backs off until a half-open probe closes a breaker.
                stale = self.cache.get_stale(model, key)
                if stale is not None:
                    self.metrics.record_request()
                    self.metrics.record_stale_hit()
                    self.obs.events.emit(
                        "stale_hit", model=model, request_id=request_id
                    )
                    pending = PendingResult()
                    response = ClassificationResponse(
                        label=stale.label,
                        neuron=stale.neuron,
                        distance=stale.distance,
                        rejected=stale.rejected,
                        confidence=stale.confidence,
                        model=model,
                        stream_id=stream_id,
                        request_id=request_id,
                        cached=True,
                        latency_s=max(0.0, self._clock() - now),
                        stale=True,
                        trace_id=trace.trace_id if trace is not None else None,
                    )
                    if trace is not None:
                        done = now + response.latency_s
                        trace.span("cache", start=now, end=done, hit=True, stale=True)
                        trace.finish("ok", t=done, cached=True, stale=True)
                    pending.set_result(response)
                    self.metrics.record_response(response.latency_s)
                    return pending
                self.metrics.record_backpressure()
                self.obs.events.emit(
                    "shed", model=model, reason="circuit_open", count=1
                )
                if trace is not None:
                    trace.finish("shed", reason="circuit_open")
                raise CircuitOpenError(
                    model,
                    open_shards=len(shard_names),
                    total_shards=len(shard_names),
                )

        with self._pending_lock:
            if self._pending >= self.config.max_pending:
                # Refused attempts count as backpressure only -- neither a
                # request nor a cache miss -- so requests_total keeps the
                # documented meaning of "requests accepted".
                self.metrics.record_backpressure()
                self.obs.events.emit(
                    "shed", model=model, reason="pending_budget", count=1
                )
                if trace is not None:
                    trace.finish("shed", reason="pending_budget")
                raise ServiceOverloadedError(
                    "service pending budget",
                    pending=self._pending,
                    capacity=self.config.max_pending,
                )
            self._pending += 1
        self.metrics.record_request()
        self.metrics.record_cache(hit=False)

        request = ClassificationRequest(
            signature=signature.astype(np.uint8, copy=True),
            model=model,
            stream_id=stream_id,
            request_id=request_id,
            cache_key=key,
            enqueued_at=now,
            packed=packed,
            generation=self._generation_of(model),
            trace=trace,
            deadline_at=deadline_at,
        )
        if trace is not None:
            trace.begin("queue", t=now)
        with self._inflight_lock:
            # First-in becomes the primary; later identical signatures
            # coalesce onto it until its batch completes.
            self._inflight.setdefault((model, key), request)
        with self._state_lock:
            if not self._running:
                # stop() won the race after the entry check: fail fast
                # instead of stranding the request in a drained lane.
                with self._pending_lock:
                    self._pending -= 1
                # Retire the dedup entry first: the follower list is frozen
                # after this, so the fan-out below cannot miss a follower
                # that attached between setdefault and the running check.
                self._drop_inflight(request)
                error = ServiceError(
                    "the service is not running; call start() first"
                )
                self._finish_failed_traces(request, "error", error)
                for follower in request.followers:
                    follower.pending.set_exception(error)
                raise error
            full_batch = self.scheduler.submit(request)
            if full_batch is not None:
                # Dispatch inside the lock so stop() cannot slip its shard
                # shutdown sentinel in front of this batch.
                self._dispatch(full_batch)
        if full_batch is None:
            self._wake.set()
        return request.pending

    def submit_many(
        self,
        X: np.ndarray,
        *,
        model: str,
        stream_id: str = "",
        deadline_s: Optional[float] = None,
        drain_timeout_s: float = 30.0,
    ) -> list[PendingResult]:
        """Submit every row of ``X``; returns one future per row.

        All-or-nothing admission: if a row's ``submit`` is refused with
        :class:`ServiceOverloadedError` (after the retry policy, if any,
        gave up), the rows already submitted are drained -- their results
        awaited and discarded, dedup followers included, since a follower's
        future resolves with its primary -- before the error is re-raised.
        A retrying caller therefore never stacks orphaned requests onto the
        already-saturated pending budget.
        """
        X = np.asarray(X)
        if X.ndim == 1:
            X = X[np.newaxis, :]
        futures: list[PendingResult] = []
        try:
            for row in X:
                futures.append(
                    self.submit(
                        row, model=model, stream_id=stream_id, deadline_s=deadline_s
                    )
                )
        except ServiceOverloadedError:
            # Drain without flushing: the deadline dispatcher cuts the
            # orphans' lane within max_delay_ms, and a global flush here
            # would fragment every other caller's half-filled batches at
            # the exact moment the service is saturated.
            for future in futures:
                try:
                    future.result(drain_timeout_s)
                except ServiceError:
                    pass
            raise
        return futures

    def classify(
        self,
        model: str,
        X: np.ndarray,
        *,
        stream_id: str = "",
        timeout: float = 30.0,
        deadline_s: Optional[float] = None,
    ) -> list[ClassificationResponse]:
        """Synchronous convenience: submit every row of ``X`` and wait.

        This is the path :class:`repro.pipeline.system.RecognitionSystem`
        uses to push a frame's silhouettes through the service.  Delegates
        admission (and its all-or-nothing overload drain) to
        :meth:`submit_many`.
        """
        futures = self.submit_many(
            X,
            model=model,
            stream_id=stream_id,
            deadline_s=deadline_s,
            drain_timeout_s=timeout,
        )
        return [future.result(timeout) for future in futures]

    def flush(self) -> None:
        """Force-dispatch every buffered lane (bounded-latency barrier)."""
        for batch in self.scheduler.drain():
            self._dispatch(batch)

    # ------------------------------------------------------------------ #
    # Dispatch and completion
    # ------------------------------------------------------------------ #
    def _drop_inflight(self, request: ClassificationRequest) -> None:
        """Retire one request from the dedup table (identity-checked).

        After this, no further submit can coalesce onto it, so its
        ``followers`` list is frozen and safe to iterate without the lock.
        """
        key = (request.model, request.cache_key)
        with self._inflight_lock:
            if self._inflight.get(key) is request:
                del self._inflight[key]

    def _finish_failed_traces(
        self, request: ClassificationRequest, status: str, error: BaseException
    ) -> None:
        """Terminal spans for a failed request and its dedup followers.

        Every error path ends sampled traces with a status (``"error"`` or
        ``"shed"``) and the error type, so an evicted model's requests
        still leave a complete, retrievable trace.
        """
        name = type(error).__name__
        if request.trace is not None:
            request.trace.finish(status, error=name)
        for follower in request.followers:
            if follower.trace is not None:
                follower.trace.finish(status, error=name)

    def _fail_batch(self, batch: MicroBatch, error: BaseException, *, shed: bool) -> None:
        """Deliver ``error`` to a batch's futures (followers included).

        Releases the batch's pending-budget slots; ``shed=True``
        additionally counts the refusals as backpressure rejections.
        """
        if shed:
            self.metrics.record_backpressure(len(batch))
            self.obs.events.emit(
                "shed", model=batch.model, reason="shard_queues", count=len(batch)
            )
        with self._pending_lock:
            self._pending -= len(batch)
        status = "shed" if shed else "error"
        for request in batch.requests:
            self._drop_inflight(request)
            self._finish_failed_traces(request, status, error)
            request.pending.set_exception(error)
            for follower in request.followers:
                follower.pending.set_exception(error)

    def _shed_expired(self, batch: MicroBatch) -> None:
        """Fail an expired sub-batch terminally (``deadline_exceeded``).

        Releases the pending budget and retires dedup entries exactly like
        the other failure paths, so a shed request can never wedge the
        admission accounting.
        """
        error = DeadlineExceededError(batch.model)
        self.metrics.record_deadline_exceeded(len(batch))
        self.obs.events.emit(
            "shed", model=batch.model, reason="deadline_exceeded", count=len(batch)
        )
        with self._pending_lock:
            self._pending -= len(batch)
        for request in batch.requests:
            self._drop_inflight(request)
            self._finish_failed_traces(request, "shed", error)
            request.pending.set_exception(error)
            for follower in request.followers:
                follower.pending.set_exception(error)

    def _dispatch(self, batch: MicroBatch) -> None:
        # First deadline shed: requests that expired while waiting for
        # their batch to be cut never reach a shard queue.  (The shard
        # sheds once more just before kernel launch.)
        live, expired = batch.partition_expired(self._clock())
        if expired is not None:
            self._shed_expired(expired)
        if live is None:
            return
        batch = live
        self.metrics.record_batch(len(batch), batch.fill_fraction)
        for request in batch.requests:
            if request.trace is not None:
                # The batch-cut timestamp is the queue/batch boundary: the
                # request stopped waiting for peers and started waiting for
                # a shard.  The shard ends the batch span at kernel start.
                request.trace.end("queue", t=batch.cut_at)
                request.trace.begin("batch", t=batch.cut_at)
        try:
            self.registry.submit(batch)
        except ServiceOverloadedError as error:
            # Shard queues saturated: shed the whole batch back to callers,
            # counting one rejection per refused request.
            self._fail_batch(batch, error, shed=True)
        except BaseException as error:
            self._fail_batch(batch, error, shed=False)

    def _on_batch_done(
        self, shard: WorkerShard, batch: MicroBatch, prediction: BatchPrediction
    ) -> None:
        # Retire the dedup entries first: once an entry is gone no new
        # follower can attach, so each request's follower list is final by
        # the time it is resolved below.
        for request in batch.requests:
            self._drop_inflight(request)
        # Finish sampled traces *before* resolving futures: a caller woken
        # by result() can immediately retrieve its complete trace by id.
        for row, request in enumerate(batch.requests):
            label = int(prediction.labels[row])
            if request.trace is not None:
                request.trace.finish("ok", label=label)
            for follower in request.followers:
                if follower.trace is not None:
                    follower.trace.finish("ok", label=label, deduplicated=True)
        responses = resolve_requests(batch.requests, prediction, clock=self._clock)
        if self._board is not None:
            self._board.record(batch.model, shard.name, ok=True)
        with self._pending_lock:
            self._pending -= len(batch)
        for request, response in zip(batch.requests, responses):
            self.metrics.record_response(response.latency_s)
            for follower in request.followers:
                fanned = resolve_follower(follower, response, clock=self._clock)
                self.metrics.record_response(fanned.latency_s)
        # Memoise under the generation lock: a request stamped with the
        # model's current generation was classified by the current map (a
        # swap bumps the generation only after the shards have flipped), so
        # checking inside the lock guarantees no superseded outcome is
        # written after swap_model's cache invalidation ran.
        with self._gen_lock:
            current = self._generations.get(batch.model, 0)
            for request, response in zip(batch.requests, responses):
                if request.generation != current:
                    continue
                try:
                    self.cache.put(
                        request.model,
                        request.cache_key,
                        CachedOutcome(
                            label=response.label,
                            neuron=response.neuron,
                            distance=response.distance,
                            rejected=response.rejected,
                            confidence=response.confidence,
                        ),
                    )
                except Exception:
                    # A cache write fault loses a memoisation, nothing
                    # else: the response was already delivered above.
                    self.metrics.record_cache_error()
        if self._rollout is not None:
            # Shadow mirroring runs dead last: every caller already has its
            # answer, so a slow (or crashing) candidate cannot touch the
            # primary path.  The hook itself only enqueues.
            try:
                self._rollout.mirror_batch(batch, responses)
            except Exception:  # pragma: no cover - mirroring must not fail
                pass

    def _on_batch_failed(
        self, shard: WorkerShard, batch: MicroBatch, error: BaseException
    ) -> None:
        # The shard already delivered `error` to every primary future;
        # release the pending-budget slots so a failing model cannot
        # permanently exhaust max_pending, and fan the error out to any
        # deduplicated followers.
        deadline = isinstance(error, DeadlineExceededError)
        if deadline:
            # The shard's pre-kernel shed: account it as a deadline shed,
            # not a model failure.
            self.metrics.record_deadline_exceeded(len(batch))
            self.obs.events.emit(
                "shed",
                model=batch.model,
                reason="deadline_exceeded",
                count=len(batch),
            )
        with self._pending_lock:
            self._pending -= len(batch)
        status = "shed" if deadline else "error"
        for request in batch.requests:
            self._drop_inflight(request)
            self._finish_failed_traces(request, status, error)
            for follower in request.followers:
                if not follower.pending.done():
                    follower.pending.set_exception(error)
        if self._board is not None and not isinstance(
            error, (ModelEvictedError, DeadlineExceededError, ShardFailedError)
        ):
            # Kernel failures feed the breaker; evictions and deadline
            # sheds say nothing about shard health, and shard deaths are
            # recorded by the supervisor's restart hook (the failure
            # callback may fire against a replacement-owned queue).
            self._board.record(batch.model, shard.name, ok=False)

    def _on_shard_restart(self, model: str, shard_name: str, reason: str) -> None:
        """Supervisor hook: a dead/wedged worker was replaced."""
        self.metrics.record_shard_restart()
        self.obs.events.emit(
            "shard_restart", model=model, shard=shard_name, reason=reason
        )
        if self._board is not None:
            self._board.record(model, shard_name, ok=False)

    def _on_shard_disabled(self, model: str, shard_name: str, reason: str) -> None:
        """Supervisor hook: a shard exhausted its restart budget."""
        self.obs.events.emit(
            "shard_disabled", model=model, shard=shard_name, reason=reason
        )
        if self._board is not None:
            self._board.record(model, shard_name, ok=False)

    def _dispatch_loop(self) -> None:
        max_idle_wait = max(self.config.max_delay_ms / 1e3, 0.01)
        while not self._stop_event.is_set():
            deadline = self.scheduler.next_deadline()
            if deadline is None:
                self._wake.wait(timeout=max_idle_wait)
                self._wake.clear()
                continue
            remaining = deadline - self._clock()
            if remaining > 0:
                self._wake.wait(timeout=remaining)
                self._wake.clear()
            for batch in self.scheduler.due():
                self._dispatch(batch)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    @property
    def pending_requests(self) -> int:
        """Admitted requests not yet resolved (cache hits excluded)."""
        with self._pending_lock:
            return self._pending

    def metrics_snapshot(self) -> MetricsSnapshot:
        """Current counters plus a live per-shard queue-depth sample."""
        return self.metrics.snapshot(self.registry.queue_depths())
