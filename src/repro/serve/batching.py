"""The micro-batching scheduler at the heart of the serving layer.

The FPGA earns its throughput by scoring one signature against all neurons
in parallel; the software batch path earns its own by scoring *many
signatures* against all neurons in one ``pairwise_masked_hamming`` call.
The scheduler's job is to manufacture those batches from a trickle of
single-signature requests arriving from many camera streams:

* a batch is flushed as soon as it reaches ``batch_size`` requests
  (size-bounded), or
* when its oldest request has waited ``max_delay_s`` (deadline-bounded),
  so a lone camera at 3 a.m. still gets answers within the deadline.

Each registered model gets its own accumulation lane, because batches can
only be scored by one classifier.  The scheduler is purely passive -- it
never starts threads and owns no clock beyond the injectable ``clock``
callable -- which keeps flush behaviour exactly testable; the service's
dispatcher thread drives :meth:`due` off :meth:`next_deadline`.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.serve.request import ClassificationRequest


@dataclass(frozen=True)
class MicroBatch:
    """A flushed group of requests for one model.

    Attributes
    ----------
    model:
        Registry model the batch is destined for.
    requests:
        The member requests, in arrival order.
    capacity:
        The scheduler's ``batch_size`` when the batch was cut; with
        :attr:`fill_fraction` this is the batch-fill telemetry signal.
    flushed_by:
        ``"size"``, ``"deadline"`` or ``"drain"`` -- why the batch was cut.
    cut_at:
        Scheduler clock value at the moment the batch was cut; request
        traces use it as the queue-wait / batch-wait span boundary.
    """

    model: str
    requests: tuple[ClassificationRequest, ...]
    capacity: int
    flushed_by: str
    cut_at: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def fill_fraction(self) -> float:
        """How full the batch was when cut (1.0 = size-triggered flush)."""
        return len(self.requests) / float(self.capacity)

    def partition_expired(
        self, now: float
    ) -> tuple[Optional["MicroBatch"], Optional["MicroBatch"]]:
        """Split into ``(live, expired)`` sub-batches by request deadline.

        Deadline shedding happens twice -- at dispatch and again just
        before kernel launch -- and both sites use this split so the live
        remainder keeps its batch metadata (capacity, flush reason, cut
        time) for telemetry.  The common no-deadline case returns
        ``(self, None)`` without allocating.
        """
        if all(r.deadline_at is None for r in self.requests):
            return self, None
        live = tuple(r for r in self.requests if not r.expired(now))
        if len(live) == len(self.requests):
            return self, None
        expired = tuple(r for r in self.requests if r.expired(now))
        live_batch = (
            dataclasses.replace(self, requests=live) if live else None
        )
        expired_batch = dataclasses.replace(self, requests=expired)
        return live_batch, expired_batch


class MicroBatchScheduler:
    """Size/deadline-bounded request accumulator, one lane per model.

    Parameters
    ----------
    batch_size:
        Flush as soon as a lane holds this many requests.
    max_delay_s:
        Flush a lane once its oldest request has waited this long.
    clock:
        Monotonic time source; injectable so tests can step time manually.
    """

    def __init__(
        self,
        batch_size: int = 32,
        max_delay_s: float = 0.005,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if max_delay_s <= 0:
            raise ConfigurationError(
                f"max_delay_s must be positive, got {max_delay_s}"
            )
        self.batch_size = int(batch_size)
        self.max_delay_s = float(max_delay_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._lanes: dict[str, list[ClassificationRequest]] = {}
        self._oldest: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Submission and flushing
    # ------------------------------------------------------------------ #
    def submit(self, request: ClassificationRequest) -> Optional[MicroBatch]:
        """Queue one request; returns a batch when it filled the lane."""
        with self._lock:
            lane = self._lanes.setdefault(request.model, [])
            if not lane:
                self._oldest[request.model] = self._clock()
            lane.append(request)
            if len(lane) >= self.batch_size:
                return self._cut(request.model, "size")
        return None

    def due(self) -> list[MicroBatch]:
        """Cut every lane whose oldest request has exceeded the deadline."""
        now = self._clock()
        batches: list[MicroBatch] = []
        with self._lock:
            for model in list(self._lanes):
                if self._lanes[model] and now - self._oldest[model] >= self.max_delay_s:
                    batches.append(self._cut(model, "deadline"))
        return batches

    def drain(self) -> list[MicroBatch]:
        """Cut every non-empty lane regardless of size or age (shutdown)."""
        with self._lock:
            return [
                self._cut(model, "drain")
                for model in list(self._lanes)
                if self._lanes[model]
            ]

    def cut_lane(self, model: str) -> Optional[MicroBatch]:
        """Cut one model's lane immediately (empty lane returns ``None``).

        Model eviction uses this to pull the evicted model's buffered
        requests out of the scheduler so their futures can be failed
        promptly instead of waiting for the deadline flush to discover the
        name no longer routes.
        """
        with self._lock:
            if self._lanes.get(model):
                return self._cut(model, "drain")
        return None

    def _cut(self, model: str, reason: str) -> MicroBatch:
        # Caller holds the lock.
        requests = tuple(self._lanes[model])
        self._lanes[model] = []
        self._oldest.pop(model, None)
        return MicroBatch(
            model=model,
            requests=requests,
            capacity=self.batch_size,
            flushed_by=reason,
            cut_at=self._clock(),
        )

    # ------------------------------------------------------------------ #
    # Introspection for the dispatcher
    # ------------------------------------------------------------------ #
    def next_deadline(self) -> Optional[float]:
        """Clock value at which the earliest lane becomes due, if any."""
        with self._lock:
            if not self._oldest:
                return None
            return min(self._oldest.values()) + self.max_delay_s

    def pending_count(self, model: Optional[str] = None) -> int:
        """Requests currently buffered (for one model, or in total)."""
        with self._lock:
            if model is not None:
                return len(self._lanes.get(model, ()))
            return sum(len(lane) for lane in self._lanes.values())
