"""Request/response value objects for the streaming inference service.

A camera stream submits one :class:`ClassificationRequest` per silhouette
signature and receives a :class:`PendingResult` -- a small future that the
worker shard resolves with a :class:`ClassificationResponse` once the
request's micro-batch has been classified (or immediately, on a cache hit).

The objects are deliberately dumb: all scheduling, caching and routing
policy lives in :mod:`repro.serve.service` and friends.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ResultTimeoutError
from repro.obs.trace import Trace


@dataclass(frozen=True)
class ClassificationResponse:
    """The service's answer to one classification request.

    Attributes
    ----------
    label:
        Predicted identity (``UNKNOWN_LABEL`` when rejected).
    neuron:
        Winning neuron index (``-1`` for cache hits recorded before the
        winning neuron was known -- never the case in practice, cached
        entries store the full outcome).
    distance:
        Winning (masked Hamming) distance.
    rejected:
        Whether the unknown-rejection threshold fired.
    confidence:
        Win-frequency purity of the winning neuron's label.
    model:
        Name of the registry model that served the request.
    stream_id:
        The camera stream the request came from.
    request_id:
        Service-wide monotonically increasing request number.
    cached:
        ``True`` when the answer came from the signature LRU cache and the
        SOM was never consulted.
    latency_s:
        Submit-to-resolve wall-clock latency in seconds.
    deduplicated:
        ``True`` when the answer was fanned out from another in-flight
        request with an identical packed signature -- the SOM executed one
        kernel for the whole group and this response rode along.
    stale:
        ``True`` when the answer came from the *stale* tier of the
        signature cache while every shard circuit breaker of the model was
        open (graceful degradation) -- the outcome may predate a hot-swap.
        Always ``cached=True`` as well.
    trace_id:
        Id of the request's trace when it was sampled
        (:class:`repro.obs.Tracer`); retrieve the full span breakdown with
        ``service.obs.trace(response.trace_id)``.  ``None`` when the
        request was not sampled.
    """

    label: int
    neuron: int
    distance: float
    rejected: bool
    confidence: float
    model: str
    stream_id: str
    request_id: int
    cached: bool
    latency_s: float
    deduplicated: bool = False
    stale: bool = False
    trace_id: Optional[int] = None


class PendingResult:
    """A minimal thread-safe future for one in-flight request.

    ``concurrent.futures.Future`` would work, but this variant is a few
    lines, cannot be cancelled half-way through a shard's resolve loop, and
    keeps the serving layer dependency-free.
    """

    __slots__ = ("_event", "_response", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._response: Optional[ClassificationResponse] = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        """Whether a response (or error) has been delivered."""
        return self._event.is_set()

    def set_result(self, response: ClassificationResponse) -> None:
        self._response = response
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> ClassificationResponse:
        """Block until the response arrives; re-raise shard-side errors."""
        if not self._event.wait(timeout):
            raise ResultTimeoutError(timeout)
        if self._error is not None:
            raise self._error
        assert self._response is not None
        return self._response


@dataclass
class ClassificationRequest:
    """One signature queued for micro-batched classification.

    ``packed`` carries the signature as ``uint64`` words
    (:func:`repro.signatures.packing.packed_signature_words`), produced
    once at submit time together with ``cache_key`` (the words' raw
    bytes).  Shards score an all-packed batch straight against the bSOM's
    cached bit-planes without re-packing or re-validating; ``signature``
    is retained for models without a packed query path.

    ``generation`` stamps the model generation current at submit time (the
    service bumps it on every hot-swap/evict) so the completion path never
    memoises a prediction that might predate a swap.  ``followers`` holds
    deduplicated requests with an identical in-flight packed signature:
    they never reach a shard; the one kernel execution of this (primary)
    request resolves them all.

    ``trace`` rides along when the request was sampled: the scheduler, the
    worker shard and the completion path each stamp their stage spans onto
    it, so a single object reference carries the whole queue -> batch ->
    kernel -> resolve attribution across threads.

    ``deadline_at`` is the absolute monotonic clock value after which the
    caller no longer wants an answer (``None`` = no deadline).  The service
    sheds expired requests at dispatch time and the shard sheds again just
    before kernel launch, each with a terminal
    :class:`~repro.errors.DeadlineExceededError`.
    """

    signature: np.ndarray
    model: str
    stream_id: str
    request_id: int
    cache_key: bytes
    enqueued_at: float
    packed: Optional[np.ndarray] = None
    pending: PendingResult = field(default_factory=PendingResult)
    generation: int = 0
    followers: list["ClassificationRequest"] = field(default_factory=list)
    trace: Optional[Trace] = None
    deadline_at: Optional[float] = None

    def expired(self, now: float) -> bool:
        """Whether the request's deadline has passed at clock value ``now``."""
        return self.deadline_at is not None and now > self.deadline_at

    @property
    def trace_id(self) -> Optional[int]:
        return self.trace.trace_id if self.trace is not None else None


def resolve_requests(requests, prediction, *, clock) -> list[ClassificationResponse]:
    """Resolve each request's future from one row of a batch prediction.

    Shared by the service's completion path and by a registry used without
    a service: ``prediction`` is the :class:`repro.core.BatchPrediction`
    for the stacked signatures of ``requests``, in the same order.
    """
    responses: list[ClassificationResponse] = []
    now = clock()
    for row, request in enumerate(requests):
        response = ClassificationResponse(
            label=int(prediction.labels[row]),
            neuron=int(prediction.neurons[row]),
            distance=float(prediction.distances[row]),
            rejected=bool(prediction.rejected[row]),
            confidence=float(prediction.confidences[row]),
            model=request.model,
            stream_id=request.stream_id,
            request_id=request.request_id,
            cached=False,
            latency_s=max(0.0, now - request.enqueued_at),
            trace_id=request.trace_id,
        )
        request.pending.set_result(response)
        responses.append(response)
    return responses


def resolve_follower(
    follower: ClassificationRequest, response: ClassificationResponse, *, clock
) -> ClassificationResponse:
    """Fan one resolved (primary) response out to a deduplicated follower.

    The classification fields are shared -- one kernel execution answered
    the whole group -- but identity and latency are per-request, and the
    response is marked ``deduplicated`` so telemetry and tests can see the
    fan-out.
    """
    fanned = ClassificationResponse(
        label=response.label,
        neuron=response.neuron,
        distance=response.distance,
        rejected=response.rejected,
        confidence=response.confidence,
        model=follower.model,
        stream_id=follower.stream_id,
        request_id=follower.request_id,
        cached=False,
        latency_s=max(0.0, clock() - follower.enqueued_at),
        deduplicated=True,
        trace_id=follower.trace_id,
    )
    follower.pending.set_result(fanned)
    return fanned
