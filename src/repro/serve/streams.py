"""Simulated multi-camera load generation for the serving layer.

The paper's deployment is a camera at 30 fps feeding silhouettes to the
FPGA.  To exercise the service the way a multi-camera site would, each
:class:`SimulatedCameraStream` replays signatures drawn from a labelled
pool -- with a configurable probability of repeating the previous frame's
signature, because consecutive frames of the same silhouette really do
binarise to identical 768-bit signatures (that repetition is what the
signature LRU cache exploits).

:func:`drive_streams` runs one submitting thread per stream against a
running service and gathers per-stream responses, retrying briefly on
backpressure the way a real edge client would.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import ConfigurationError, ServiceError, ServiceOverloadedError
from repro.serve.request import ClassificationResponse
from repro.serve.service import StreamingInferenceService


class SimulatedCameraStream:
    """One synthetic camera: an iterator over (signature, true label) pairs.

    Parameters
    ----------
    stream_id:
        Name reported with every request (e.g. ``"cam-3"``).
    signatures, labels:
        Pool of binary signatures (and their identities) the stream draws
        frames from -- typically a held-out test split.
    n_frames:
        Frames the stream will emit.
    repeat_probability:
        Chance that a frame repeats the previous signature exactly,
        modelling consecutive frames of a stationary silhouette.
    seed:
        Per-stream RNG seed; distinct seeds give distinct frame orders.
    """

    def __init__(
        self,
        stream_id: str,
        signatures: np.ndarray,
        labels: np.ndarray,
        *,
        n_frames: int = 100,
        repeat_probability: float = 0.3,
        seed: SeedLike = None,
    ):
        signatures = np.asarray(signatures)
        labels = np.asarray(labels)
        if signatures.ndim != 2 or signatures.shape[0] == 0:
            raise ConfigurationError(
                f"signature pool must be a non-empty 2-D matrix, got shape "
                f"{signatures.shape}"
            )
        if labels.shape[0] != signatures.shape[0]:
            raise ConfigurationError(
                f"{signatures.shape[0]} pool signatures but {labels.shape[0]} labels"
            )
        if n_frames <= 0:
            raise ConfigurationError(f"n_frames must be positive, got {n_frames}")
        if not 0.0 <= repeat_probability < 1.0:
            raise ConfigurationError(
                f"repeat_probability must lie in [0, 1), got {repeat_probability}"
            )
        self.stream_id = stream_id
        self.n_frames = int(n_frames)
        self.repeat_probability = float(repeat_probability)
        self._pool = signatures.astype(np.uint8)
        self._labels = labels
        self._rng = as_generator(seed)

    def frames(self):
        """Yield ``(signature, true_label)`` for each simulated frame."""
        previous: Optional[int] = None
        for _ in range(self.n_frames):
            if previous is not None and self._rng.random() < self.repeat_probability:
                index = previous
            else:
                index = int(self._rng.integers(0, self._pool.shape[0]))
            previous = index
            yield self._pool[index], int(self._labels[index])


@dataclass
class StreamReport:
    """What one simulated camera saw from the service.

    ``latencies_s[i]`` is the client-observed wall-clock latency of
    ``responses[i]`` -- the frame's first submit attempt to result
    delivery, including backpressure backoff and any shed-batch
    resubmits in between -- so a slow stream
    (high latencies) is distinguishable from a shedding one
    (``shed_frames`` > 0, counted when a frame exhausts its retry budget
    at submit or resubmit time and is dropped).
    """

    stream_id: str
    responses: list[ClassificationResponse] = field(default_factory=list)
    true_labels: list[int] = field(default_factory=list)
    backpressure_retries: int = 0
    latencies_s: list[float] = field(default_factory=list)
    shed_frames: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of responses whose label matches the pool's truth."""
        if not self.responses:
            return 0.0
        correct = sum(
            1
            for response, truth in zip(self.responses, self.true_labels)
            if response.label == truth
        )
        return correct / len(self.responses)

    @property
    def cache_hits(self) -> int:
        return sum(1 for response in self.responses if response.cached)

    @property
    def mean_latency_s(self) -> float:
        """Mean client-observed latency (0.0 before any response)."""
        if not self.latencies_s:
            return 0.0
        return sum(self.latencies_s) / len(self.latencies_s)

    @property
    def max_latency_s(self) -> float:
        return max(self.latencies_s, default=0.0)


def drive_streams(
    service: StreamingInferenceService,
    streams: list[SimulatedCameraStream],
    *,
    model: str,
    timeout: float = 30.0,
    backpressure_retry_s: float = 0.002,
    max_retries: int = 200,
) -> list[StreamReport]:
    """Run every stream concurrently against ``service`` and collect results.

    Each stream gets its own submitting thread (mirroring one socket per
    camera).  Backpressure arrives on two paths and both are handled as
    "retry later": :class:`ServiceOverloadedError` raised by ``submit``
    (service pending budget full) and the same error re-raised from
    ``result()`` when the request's whole batch was shed because every
    shard queue was full.  The client backs off for
    ``backpressure_retry_s`` and retries, up to ``max_retries`` times per
    frame, after which the frame is dropped -- load shedding, exactly what
    the backpressure contract asks of callers.  Dropped frames are counted
    in ``StreamReport.shed_frames``; delivered responses carry their
    client-observed wall-clock latency in ``StreamReport.latencies_s``.
    """
    reports = [StreamReport(stream_id=stream.stream_id) for stream in streams]
    errors: list[BaseException] = []

    def submit_with_retry(stream, report, signature):
        for _ in range(max_retries + 1):
            try:
                future = service.submit(
                    signature, model=model, stream_id=stream.stream_id
                )
                return future
            except ServiceOverloadedError:
                report.backpressure_retries += 1
                time.sleep(backpressure_retry_s)
        return None

    def run(stream: SimulatedCameraStream, report: StreamReport) -> None:
        try:
            futures = []
            for signature, truth in stream.frames():
                submitted_at = time.perf_counter()
                future = submit_with_retry(stream, report, signature)
                if future is not None:
                    futures.append((future, signature, truth, submitted_at))
                else:
                    report.shed_frames += 1  # submit retry budget exhausted
            for future, signature, truth, submitted_at in futures:
                delivered = False
                for _ in range(max_retries + 1):
                    try:
                        response = future.result(timeout)
                    except ServiceOverloadedError:
                        # The batch was shed at dispatch time; resubmit.
                        report.backpressure_retries += 1
                        time.sleep(backpressure_retry_s)
                        future = submit_with_retry(stream, report, signature)
                        if future is None:
                            break
                    else:
                        report.responses.append(response)
                        report.true_labels.append(truth)
                        report.latencies_s.append(
                            max(0.0, time.perf_counter() - submitted_at)
                        )
                        delivered = True
                        break
                if not delivered:
                    report.shed_frames += 1  # dropped mid-resubmit
        except BaseException as error:  # surfaced to the caller below
            errors.append(error)

    threads = [
        threading.Thread(
            target=run,
            args=(stream, report),
            name=f"stream-{stream.stream_id}",
            daemon=True,
        )
        for stream, report in zip(streams, reports)
    ]
    for thread in threads:
        thread.start()
    # Every per-frame wait inside run() is itself bounded (submit retries
    # and result() both carry timeouts), so a stream thread that outlives
    # this generous budget is wedged -- report it instead of hanging the
    # driver; daemon threads cannot block interpreter exit.
    join_timeout = max(4.0 * timeout, 120.0)
    wedged = []
    for thread in threads:
        thread.join(join_timeout)
        if thread.is_alive():
            wedged.append(thread.name)
    if wedged:
        raise ServiceError(
            f"stream driver threads wedged past {join_timeout:.0f}s: "
            + ", ".join(wedged)
        )
    if errors:
        raise errors[0]
    return reports
