"""LRU cache over packed binary signatures.

A surveillance feed is massively repetitive: the same person produces the
same (or bit-identical, after mean-threshold binarisation) 768-bit signature
for many consecutive frames.  Since the bSOM is deterministic at inference
time, a signature's classification can be memoised outright -- keyed on the
raw bytes of the packed ``uint64`` words the distance backend consumes
(:func:`repro.signatures.packing.packed_signature_words`; 96 bytes for a
768-bit signature) plus the model name, so two models never share entries.
The service packs each signature exactly once at submit time and reuses the
words for both this key and the shard's popcount kernel -- the cache never
re-packs per lookup.

The cache stores the *outcome* (label, neuron, distance, rejection,
confidence), not the response object, because latency and stream identity
differ per request even when the classification is identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CachedOutcome:
    """The model-determined part of a classification, safe to memoise."""

    label: int
    neuron: int
    distance: float
    rejected: bool
    confidence: float


class SignatureLruCache:
    """Thread-safe LRU map from ``(model, packed signature)`` to outcomes.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted when a new one would exceed it.  A capacity of 0 disables
        the cache (every ``get`` misses, ``put`` is a no-op), which the
        benchmarks use to isolate batching gains from caching gains.
    """

    def __init__(self, capacity: int = 2048):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, bytes], CachedOutcome]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, model: str, key: bytes) -> Optional[CachedOutcome]:
        """Look up a signature; counts a hit or miss and refreshes recency."""
        with self._lock:
            outcome = self._entries.get((model, key))
            if outcome is None:
                self.misses += 1
                return None
            self._entries.move_to_end((model, key))
            self.hits += 1
            return outcome

    def put(self, model: str, key: bytes, outcome: CachedOutcome) -> None:
        """Insert or refresh an entry, evicting the LRU one when full."""
        if self.capacity == 0:
            return
        with self._lock:
            full_key = (model, key)
            if full_key in self._entries:
                self._entries.move_to_end(full_key)
            self._entries[full_key] = outcome
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate_model(self, model: str) -> int:
        """Drop every entry of one model (used when the registry evicts it)."""
        with self._lock:
            stale = [k for k in self._entries if k[0] == model]
            for k in stale:
                del self._entries[k]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, model_and_key: tuple[str, bytes]) -> bool:
        with self._lock:
            return model_and_key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused).

        Hits and misses are read under the cache lock in one critical
        section -- two bare attribute reads would let a concurrent lookup
        land between them and skew the ratio.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0
