"""LRU cache over packed binary signatures.

A surveillance feed is massively repetitive: the same person produces the
same (or bit-identical, after mean-threshold binarisation) 768-bit signature
for many consecutive frames.  Since the bSOM is deterministic at inference
time, a signature's classification can be memoised outright -- keyed on the
raw bytes of the packed ``uint64`` words the distance backend consumes
(:func:`repro.signatures.packing.packed_signature_words`; 96 bytes for a
768-bit signature) plus the model name, so two models never share entries.
The service packs each signature exactly once at submit time and reuses the
words for both this key and the shard's popcount kernel -- the cache never
re-packs per lookup.

The cache stores the *outcome* (label, neuron, distance, rejection,
confidence), not the response object, because latency and stream identity
differ per request even when the classification is identical.

Entries dropped from the live tier -- by LRU eviction or
``invalidate_model`` -- are demoted into a second, bounded *stale* tier
rather than discarded.  Stale entries never answer normal lookups; the
service consults them (``get_stale``) only while every shard circuit
breaker of a model is open, trading freshness for availability and
flagging the response ``stale=True``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import ConfigurationError
from repro.serve.resilience import CACHE_CODEC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.resilience import FaultInjector


@dataclass(frozen=True)
class CachedOutcome:
    """The model-determined part of a classification, safe to memoise."""

    label: int
    neuron: int
    distance: float
    rejected: bool
    confidence: float


class SignatureLruCache:
    """Thread-safe LRU map from ``(model, packed signature)`` to outcomes.

    Parameters
    ----------
    capacity:
        Maximum number of entries; the least recently *used* entry is
        evicted when a new one would exceed it.  A capacity of 0 disables
        the cache (every ``get`` misses, ``put`` is a no-op), which the
        benchmarks use to isolate batching gains from caching gains.
    stale_capacity:
        Maximum number of entries in the stale (degradation) tier that
        evicted/invalidated entries demote into; defaults to ``capacity``.
        0 disables the tier.
    fault_injector:
        Optional :class:`~repro.serve.resilience.FaultInjector`; when armed
        for the ``cache_codec`` site, ``get``/``put`` raise
        :class:`~repro.errors.InjectedFaultError` (simulating a corrupt
        entry/codec bug) so tests can prove the service degrades a cache
        error to a miss instead of failing the request.
    """

    def __init__(
        self,
        capacity: int = 2048,
        *,
        stale_capacity: Optional[int] = None,
        fault_injector: Optional["FaultInjector"] = None,
    ):
        if capacity < 0:
            raise ConfigurationError(f"capacity must be non-negative, got {capacity}")
        if stale_capacity is None:
            stale_capacity = capacity
        if stale_capacity < 0:
            raise ConfigurationError(
                f"stale_capacity must be non-negative, got {stale_capacity}"
            )
        self.capacity = int(capacity)
        self.stale_capacity = int(stale_capacity)
        self._injector = fault_injector
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple[str, bytes], CachedOutcome]" = OrderedDict()
        self._stale: "OrderedDict[tuple[str, bytes], CachedOutcome]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_hits = 0

    def _demote_unlocked(self, full_key: tuple[str, bytes], outcome: CachedOutcome):
        # Caller holds the lock.  Most-recent demotion wins the slot.
        if self.stale_capacity == 0:
            return
        self._stale[full_key] = outcome
        self._stale.move_to_end(full_key)
        while len(self._stale) > self.stale_capacity:
            self._stale.popitem(last=False)

    def get(self, model: str, key: bytes) -> Optional[CachedOutcome]:
        """Look up a signature; counts a hit or miss and refreshes recency."""
        if self._injector is not None:
            self._injector.raise_if(CACHE_CODEC, op="get", model=model)
        with self._lock:
            outcome = self._entries.get((model, key))
            if outcome is None:
                self.misses += 1
                return None
            self._entries.move_to_end((model, key))
            self.hits += 1
            return outcome

    def get_stale(self, model: str, key: bytes) -> Optional[CachedOutcome]:
        """Degradation lookup in the stale tier (breaker-open fallback).

        Checks the live tier first -- a live entry is strictly better --
        then the stale tier.  Does not count toward hit/miss statistics
        (it is not on the normal serving path) but tracks ``stale_hits``.
        """
        with self._lock:
            outcome = self._entries.get((model, key))
            if outcome is not None:
                return outcome
            outcome = self._stale.get((model, key))
            if outcome is not None:
                self.stale_hits += 1
            return outcome

    def put(self, model: str, key: bytes, outcome: CachedOutcome) -> None:
        """Insert or refresh an entry, evicting the LRU one when full."""
        if self.capacity == 0:
            return
        if self._injector is not None:
            self._injector.raise_if(CACHE_CODEC, op="put", model=model)
        with self._lock:
            full_key = (model, key)
            if full_key in self._entries:
                self._entries.move_to_end(full_key)
            self._entries[full_key] = outcome
            while len(self._entries) > self.capacity:
                evicted_key, evicted = self._entries.popitem(last=False)
                self._demote_unlocked(evicted_key, evicted)
                self.evictions += 1

    def invalidate_model(self, model: str) -> int:
        """Demote every live entry of one model to the stale tier.

        Used on hot-swap and eviction: the outcomes may no longer match the
        serving weights, so they must not answer normal lookups -- but they
        remain available for breaker-open degradation, where an answer from
        the previous snapshot beats no answer at all.
        """
        with self._lock:
            dropped = [k for k in self._entries if k[0] == model]
            for k in dropped:
                self._demote_unlocked(k, self._entries.pop(k))
            return len(dropped)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._stale.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, model_and_key: tuple[str, bytes]) -> bool:
        with self._lock:
            return model_and_key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused).

        Hits and misses are read under the cache lock in one critical
        section -- two bare attribute reads would let a concurrent lookup
        land between them and skew the ratio.
        """
        with self._lock:
            hits, misses = self.hits, self.misses
        total = hits + misses
        return hits / total if total else 0.0
