"""The sharded model registry: named classifier snapshots behind shards.

The paper's deployment flow trains the map off-line and ships the frozen
weights to the FPGA; :class:`~repro.core.snapshot.ModelSnapshot` (and its
``.npz`` form, :mod:`repro.core.serialization`) reproduces that unit.  The
registry is the serving-side half of the story: it accepts named snapshots
(or already-fitted classifiers), stands up a
:class:`~repro.serve.shard.ShardGroup` of worker threads for each, and
routes micro-batches to them.  Several cameras can thus be served by
different map generations side by side -- e.g. ``"hall-v1"`` still serving
while ``"hall-v2"`` warms up.

Two lifecycle operations keep futures honest:

* :meth:`ModelRegistry.swap` hot-reloads a name in place -- the software
  "reflash": shards flip to the new (operand-pre-warmed) classifier at a
  micro-batch boundary, so a swap under load drops and fails nothing, and
* :meth:`ModelRegistry.evict` tears a name down, failing any still-queued
  batches with :class:`~repro.errors.ModelEvictedError` instead of leaving
  their futures to hang.

The registry works standalone (futures are resolved directly by a default
completion path) or bound to a :class:`~repro.serve.service.StreamingInferenceService`,
which replaces the completion callback to add caching and telemetry.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Mapping, Optional, Union

from repro.core.classifier import BatchPrediction, SomClassifier
from repro.core.serialization import PathLike, load_model
from repro.core.snapshot import ModelSnapshot
from repro.errors import (
    ConfigurationError,
    DataError,
    ModelEvictedError,
    UnknownModelError,
)
from repro.obs.events import EventLog
from repro.serve.batching import MicroBatch
from repro.serve.request import resolve_requests
from repro.serve.resilience import SWAP_FAILURE, FaultInjector
from repro.serve.shard import BreakerGate, ShardGroup, WorkerShard

#: What the registration/swap entry points accept as a model.
ModelSource = Union[SomClassifier, ModelSnapshot]


class TrafficRoute:
    """One logical name's weighted split across registered versions.

    Draws come from a ``random.Random`` seeded with ``f"{seed}:{name}"``,
    so the Kth resolution of a route is a pure function of
    ``(seed, name, K)`` -- a canary test that replays the same submission
    sequence sees the same version assignment, independent of thread
    interleaving across *other* routes and of ``PYTHONHASHSEED``.
    """

    __slots__ = ("name", "targets", "weights", "seed", "_cumulative", "_rng")

    def __init__(self, name: str, weights: Mapping[str, float], seed: int):
        total = float(sum(weights.values()))
        if total <= 0:
            raise ConfigurationError(
                f"route for {name!r} needs a positive total weight, got {total}"
            )
        self.name = name
        self.targets = tuple(weights)
        self.weights = tuple(float(w) / total for w in weights.values())
        self.seed = int(seed)
        cumulative: list[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift on the last bucket
        self._cumulative = tuple(cumulative)
        self._rng = random.Random(f"{seed}:{name}")

    def draw(self) -> str:
        """Pick one target version (caller holds the registry lock)."""
        r = self._rng.random()
        for target, edge in zip(self.targets, self._cumulative):
            if r < edge:
                return target
        return self.targets[-1]

    def as_dict(self) -> dict[str, float]:
        return dict(zip(self.targets, self.weights))


class ModelRegistry:
    """Named, sharded classifier snapshots with batch routing.

    Parameters
    ----------
    n_shards:
        Worker shards (threads) per registered model.
    policy:
        Shard routing policy: ``"round_robin"`` or ``"least_loaded"``.
    queue_capacity:
        Per-shard bounded queue size (the backpressure knob).
    backend:
        Distance-backend selection applied to each registered model's SOM
        (when it supports pluggable backends); ``None`` keeps whatever the
        model was built with.
    clock:
        Monotonic time source forwarded to the shards for trace
        timestamps; a binding service passes its own clock.
    fault_injector:
        Optional :class:`~repro.serve.resilience.FaultInjector`; forwarded
        to every shard (kernel/death sites) and consulted by :meth:`swap`
        (the ``swap_failure`` site).
    """

    def __init__(
        self,
        *,
        n_shards: int = 2,
        policy: str = "round_robin",
        queue_capacity: int = 8,
        backend=None,
        clock: Callable[[], float] = time.monotonic,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        self.policy = policy
        self.queue_capacity = int(queue_capacity)
        self.backend = backend
        self._clock = clock
        self._injector = fault_injector
        self._breaker_gate: Optional[BreakerGate] = None
        self._events: Optional[EventLog] = None
        self._lock = threading.Lock()
        self._groups: dict[str, ShardGroup] = {}
        self._classifiers: dict[str, SomClassifier] = {}
        self._routes: dict[str, TrafficRoute] = {}
        self._started = False
        self._completion: Callable[[WorkerShard, MicroBatch, BatchPrediction], None] = (
            self._default_completion
        )
        self._failure: Optional[
            Callable[[WorkerShard, MicroBatch, BaseException], None]
        ] = None
        self._retired: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------------ #
    # Completion binding
    # ------------------------------------------------------------------ #
    @staticmethod
    def _default_completion(
        shard: WorkerShard, batch: MicroBatch, prediction: BatchPrediction
    ) -> None:
        resolve_requests(batch.requests, prediction, clock=time.monotonic)

    def bind_completion(
        self,
        completion: Callable[[WorkerShard, MicroBatch, BatchPrediction], None],
        failure: Optional[
            Callable[[WorkerShard, MicroBatch, BaseException], None]
        ] = None,
        retired: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Replace the completion/failure/retired paths (the service adds
        cache, metrics and pending-budget accounting).

        ``retired(name)`` fires after :meth:`swap` or :meth:`evict` has
        displaced a model's classifier, so a bound service can invalidate
        its memoised outcomes even when the lifecycle call went straight to
        the registry rather than through the service's own entry points.
        """
        self._completion = completion
        self._failure = failure
        self._retired = retired

    def bind_breakers(self, gate: BreakerGate) -> None:
        """Install a circuit-breaker routing gate on every shard group.

        ``gate(model, shard_name)`` is consulted by each group's router
        before offering a batch to a shard (typically
        :meth:`repro.serve.resilience.BreakerBoard.allow`).  Applied to
        already-registered groups and to every future registration.
        """
        with self._lock:
            self._breaker_gate = gate
            groups = list(self._groups.values())
        for group in groups:
            group.breaker_gate = gate

    def bind_events(self, events: EventLog) -> None:
        """Attach a structured event log for lifecycle transitions.

        Once bound, :meth:`register`, :meth:`swap` and :meth:`evict` emit
        ``model_registered`` / ``model_swap`` / ``evict`` events with
        monotonic sequence numbers -- including lifecycle calls issued on
        the registry directly rather than through a bound service.
        """
        self._events = events

    def _emit(self, kind: str, **fields) -> None:
        if self._events is not None:
            self._events.emit(kind, **fields)

    def _dispatch_retired(self, name: str) -> None:
        if self._retired is not None:
            self._retired(name)

    def _dispatch_completion(
        self, shard: WorkerShard, batch: MicroBatch, prediction: BatchPrediction
    ) -> None:
        # Late-bound indirection so shards created before bind_completion()
        # still route through the service once it attaches.
        self._completion(shard, batch, prediction)

    def _dispatch_failure(
        self, shard: WorkerShard, batch: MicroBatch, error: BaseException
    ) -> None:
        # The shard has already delivered the error to the batch's futures;
        # this hook exists for service-side accounting.
        if self._failure is not None:
            self._failure(shard, batch, error)

    # ------------------------------------------------------------------ #
    # Registration and loading
    # ------------------------------------------------------------------ #
    @staticmethod
    def _materialise(name: str, model: ModelSource) -> SomClassifier:
        """Coerce a snapshot (or classifier) into a serveable classifier."""
        if isinstance(model, ModelSnapshot):
            model = model.to_classifier()
        if not isinstance(model, SomClassifier):
            raise DataError(
                f"model {name!r} must be a SomClassifier or ModelSnapshot, got "
                f"{type(model).__name__}"
            )
        if model.labelling is None:
            raise DataError(
                f"model {name!r} must be fitted (or labelled) before it can serve"
            )
        return model

    def _prepare_for_serving(self, classifier: SomClassifier) -> SomClassifier:
        """Apply the registry's backend choice and pre-warm the operands.

        Shared by :meth:`register` and :meth:`swap` so neither path pays
        the operand-preparation cost inside a worker's critical path: the
        first micro-batch of a fresh registration and the first post-swap
        batch both score against already-prepared kernels.
        """
        if self.backend is not None and hasattr(classifier.som, "set_backend"):
            classifier.som.set_backend(self.backend)
        if hasattr(classifier.som, "warm_operands"):
            classifier.som.warm_operands()
        return classifier

    def register(self, name: str, model: ModelSource) -> ShardGroup:
        """Register a model under ``name`` and build its shards.

        Accepts a fitted :class:`SomClassifier` or a fitted
        :class:`~repro.core.snapshot.ModelSnapshot` (the lifecycle
        currency; materialised into a fresh classifier here).
        """
        if not name:
            raise ConfigurationError("model name must be a non-empty string")
        classifier = self._prepare_for_serving(self._materialise(name, model))
        with self._lock:
            if name in self._groups:
                raise ConfigurationError(f"a model named {name!r} is already registered")
            group = ShardGroup(
                name,
                classifier,
                self._dispatch_completion,
                failure=self._dispatch_failure,
                n_shards=self.n_shards,
                policy=self.policy,
                queue_capacity=self.queue_capacity,
                # Backend selection and operand warm-up already applied above.
                backend=None,
                clock=self._clock,
                fault_injector=self._injector,
            )
            group.breaker_gate = self._breaker_gate
            self._groups[name] = group
            self._classifiers[name] = classifier
            if self._started:
                group.start()
        self._emit(
            "model_registered",
            model=name,
            n_shards=self.n_shards,
            weights_version=getattr(classifier.som, "weights_version", None),
        )
        return group

    def load(self, name: str, path: PathLike) -> SomClassifier:
        """Load a classifier snapshot saved by ``save_model`` and register it."""
        model = load_model(path)
        if not isinstance(model, SomClassifier):
            raise DataError(
                f"snapshot {path} holds a bare {type(model).__name__}, not a "
                "SomClassifier; save the fitted classifier, not just the map"
            )
        self.register(name, model)
        return model

    def swap(self, name: str, model: ModelSource) -> SomClassifier:
        """Hot-reload ``name`` with a new model; return the previous classifier.

        The software equivalent of reflashing the FPGA without power-cycling
        the camera: the shard group stays up, its queues are untouched, and
        every shard flips to the new classifier at a micro-batch boundary --
        a swap issued while requests are queued completes with zero dropped
        or failed futures.  The new model's distance operands are prepared
        *before* the flip, so the first post-swap batch pays no warm-up.

        Accepts a fitted classifier or :class:`ModelSnapshot`.  The new
        model must consume the same signature width as the old one
        (queued requests were packed for that width); the neuron count may
        change freely.

        A failure anywhere before the flip -- validation, operand
        preparation, or the injected ``swap_failure`` site -- leaves the
        old classifier serving untouched: the swap is atomic from the
        queues' point of view.
        """
        classifier = self._materialise(name, model)
        current = self.classifier(name)  # raises UnknownModelError
        if classifier.som.n_bits != current.som.n_bits:
            raise ConfigurationError(
                f"cannot swap model {name!r}: queued requests carry "
                f"{current.som.n_bits}-bit signatures but the new model expects "
                f"{classifier.som.n_bits} bits"
            )
        if self._injector is not None:
            self._injector.raise_if(SWAP_FAILURE, model=name)
        self._prepare_for_serving(classifier)
        with self._lock:
            group = self._groups.get(name)
            if group is None:
                raise UnknownModelError(name, tuple(self._groups))
            previous = self._classifiers[name]
            self._classifiers[name] = classifier
            group.swap_classifier(classifier)
        self._emit(
            "model_swap",
            model=name,
            weights_version=getattr(classifier.som, "weights_version", None),
            previous_weights_version=getattr(previous.som, "weights_version", None),
        )
        self._dispatch_retired(name)
        return previous

    def evict(self, name: str) -> SomClassifier:
        """Unregister ``name``, stop its shards, and return its classifier.

        Batches still queued behind the evicted model are failed promptly
        with :class:`~repro.errors.ModelEvictedError` (an
        :class:`~repro.errors.UnknownModelError`), so every submitted
        future completes -- either with the classification the worker had
        already pulled, or with the eviction error.  Nothing is left to
        hang until a caller's timeout.
        """
        with self._lock:
            group = self._groups.pop(name, None)
            if group is None:
                raise UnknownModelError(name, tuple(self._groups))
            classifier = self._classifiers.pop(name)
            remaining = tuple(self._groups)
            # Routes pointing at (or keyed by) the evicted name would
            # resolve requests into a void; drop them with the model.
            dropped_routes = [
                key
                for key, route in self._routes.items()
                if key == name or name in route.targets
            ]
            for key in dropped_routes:
                del self._routes[key]
        error = ModelEvictedError(name, remaining)
        # First pass: fail what is queued right now (covers never-started
        # shards, whose queues would otherwise strand their futures).
        cancelled = group.cancel_queued(error)
        group.stop()
        # Second pass: anything that raced in between the cancel and the
        # worker shutdown (the name is already unrouteable, but a caller
        # holding a direct group reference could still have submitted).
        cancelled += group.cancel_queued(error)
        self._emit("evict", model=name, cancelled_requests=cancelled)
        for key in dropped_routes:
            self._emit("route_cleared", model=key)
        self._dispatch_retired(name)
        return classifier

    # ------------------------------------------------------------------ #
    # Versioned traffic routing
    # ------------------------------------------------------------------ #
    def set_route(
        self, name: str, weights: Mapping[str, float], *, seed: int = 0
    ) -> None:
        """Split traffic submitted under ``name`` across registered versions.

        ``weights`` maps registered model names (e.g. ``"hall"`` and
        ``"hall@v3"``) to positive weights; they are normalised to a
        distribution, and every subsequent :meth:`resolve` of ``name``
        draws one version from it.  Draws come from a stream seeded with
        ``f"{seed}:{name}"``, so the assignment sequence is reproducible.
        Setting a route replaces any previous route for the name
        atomically; in-flight requests keep the version they were already
        resolved to.
        """
        if not weights:
            raise ConfigurationError(f"route for {name!r} needs at least one target")
        route = TrafficRoute(name, weights, seed)
        with self._lock:
            missing = [t for t in route.targets if t not in self._groups]
            if missing:
                raise UnknownModelError(missing[0], tuple(self._groups))
            self._routes[name] = route
        self._emit("route_set", model=name, targets=route.as_dict(), seed=route.seed)

    def clear_route(self, name: str) -> bool:
        """Remove ``name``'s traffic split (back to direct lookup)."""
        with self._lock:
            removed = self._routes.pop(name, None) is not None
        if removed:
            self._emit("route_cleared", model=name)
        return removed

    def route(self, name: str) -> Optional[dict[str, float]]:
        """The normalised weights of ``name``'s split, or ``None``."""
        with self._lock:
            route = self._routes.get(name)
            return route.as_dict() if route is not None else None

    def resolve(self, name: str) -> str:
        """Map a logical model name to the concrete version serving it now.

        Unrouted names resolve to themselves, so the call is a cheap
        pass-through for the common no-canary case.  The returned name is
        what batches, cache keys and responses carry -- a request, once
        resolved, sticks to its version for its whole lifetime.
        """
        with self._lock:
            route = self._routes.get(name)
            if route is None:
                return name
            return route.draw()

    # ------------------------------------------------------------------ #
    # Lookup and routing
    # ------------------------------------------------------------------ #
    def group(self, name: str) -> ShardGroup:
        with self._lock:
            group = self._groups.get(name)
            if group is None:
                raise UnknownModelError(name, tuple(self._groups))
            return group

    def classifier(self, name: str) -> SomClassifier:
        with self._lock:
            classifier = self._classifiers.get(name)
            if classifier is None:
                raise UnknownModelError(name, tuple(self._classifiers))
            return classifier

    def submit(self, batch: MicroBatch) -> WorkerShard:
        """Route a micro-batch to a shard of its model."""
        return self.group(batch.model).submit(batch)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._groups)

    def iter_shards(self) -> list[tuple[str, WorkerShard]]:
        """Snapshot of ``(model, shard)`` pairs across every registered
        model (the supervisor's scan surface)."""
        with self._lock:
            groups = list(self._groups.items())
        return [(model, shard) for model, group in groups for shard in group.shards]

    def shard_names(self, model: str) -> tuple[str, ...]:
        """Shard names of one model (the breaker board's key space)."""
        return tuple(shard.name for shard in self.group(model).shards)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._groups

    def __len__(self) -> int:
        with self._lock:
            return len(self._groups)

    # ------------------------------------------------------------------ #
    # Lifecycle and telemetry
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        with self._lock:
            self._started = True
            groups = list(self._groups.values())
        for group in groups:
            group.start()

    def stop(self, timeout: float = 5.0) -> list[str]:
        """Stop every shard of every model; returns leaked worker names.

        A leaked worker -- one that failed to join within ``timeout``
        (wedged kernel, starved host) -- is reported per shard by
        :meth:`WorkerShard.stop`; the registry aggregates the names and
        emits one ``shard_leak`` event each, so a shutdown that strands a
        thread is visible in telemetry instead of silent.
        """
        with self._lock:
            self._started = False
            groups = list(self._groups.values())
        leaked: list[str] = []
        for group in groups:
            leaked.extend(group.stop(timeout))
        for name in leaked:
            self._emit("shard_leak", shard=name)
        return leaked

    def queue_depths(self) -> dict[str, int]:
        """Queued batches per shard across every registered model."""
        with self._lock:
            groups = list(self._groups.values())
        depths: dict[str, int] = {}
        for group in groups:
            depths.update(group.queue_depths())
        return depths
