"""The sharded model registry: named classifier snapshots behind shards.

The paper's deployment flow trains the map off-line and ships the frozen
weights to the FPGA; :mod:`repro.core.serialization` reproduces that as
``.npz`` snapshots.  The registry is the serving-side half of the story: it
loads named snapshots (or accepts already-fitted classifiers), stands up a
:class:`~repro.serve.shard.ShardGroup` of worker threads for each, and
routes micro-batches to them.  Several cameras can thus be served by
different map generations side by side -- e.g. ``"hall-v1"`` still serving
while ``"hall-v2"`` warms up -- and evicting a name tears its shards down
cleanly.

The registry works standalone (futures are resolved directly by a default
completion path) or bound to a :class:`~repro.serve.service.StreamingInferenceService`,
which replaces the completion callback to add caching and telemetry.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.core.classifier import BatchPrediction, SomClassifier
from repro.core.serialization import PathLike, load_model
from repro.errors import ConfigurationError, DataError, UnknownModelError
from repro.serve.batching import MicroBatch
from repro.serve.request import resolve_requests
from repro.serve.shard import ShardGroup, WorkerShard


class ModelRegistry:
    """Named, sharded classifier snapshots with batch routing.

    Parameters
    ----------
    n_shards:
        Worker shards (threads) per registered model.
    policy:
        Shard routing policy: ``"round_robin"`` or ``"least_loaded"``.
    queue_capacity:
        Per-shard bounded queue size (the backpressure knob).
    backend:
        Distance-backend selection applied to each registered model's SOM
        (when it supports pluggable backends); ``None`` keeps whatever the
        model was built with.
    """

    def __init__(
        self,
        *,
        n_shards: int = 2,
        policy: str = "round_robin",
        queue_capacity: int = 8,
        backend=None,
    ):
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = int(n_shards)
        self.policy = policy
        self.queue_capacity = int(queue_capacity)
        self.backend = backend
        self._lock = threading.Lock()
        self._groups: dict[str, ShardGroup] = {}
        self._classifiers: dict[str, SomClassifier] = {}
        self._started = False
        self._completion: Callable[[WorkerShard, MicroBatch, BatchPrediction], None] = (
            self._default_completion
        )
        self._failure: Optional[
            Callable[[WorkerShard, MicroBatch, BaseException], None]
        ] = None

    # ------------------------------------------------------------------ #
    # Completion binding
    # ------------------------------------------------------------------ #
    @staticmethod
    def _default_completion(
        shard: WorkerShard, batch: MicroBatch, prediction: BatchPrediction
    ) -> None:
        resolve_requests(batch.requests, prediction, clock=time.monotonic)

    def bind_completion(
        self,
        completion: Callable[[WorkerShard, MicroBatch, BatchPrediction], None],
        failure: Optional[
            Callable[[WorkerShard, MicroBatch, BaseException], None]
        ] = None,
    ) -> None:
        """Replace the completion/failure paths (the service adds cache,
        metrics and pending-budget accounting)."""
        self._completion = completion
        self._failure = failure

    def _dispatch_completion(
        self, shard: WorkerShard, batch: MicroBatch, prediction: BatchPrediction
    ) -> None:
        # Late-bound indirection so shards created before bind_completion()
        # still route through the service once it attaches.
        self._completion(shard, batch, prediction)

    def _dispatch_failure(
        self, shard: WorkerShard, batch: MicroBatch, error: BaseException
    ) -> None:
        # The shard has already delivered the error to the batch's futures;
        # this hook exists for service-side accounting.
        if self._failure is not None:
            self._failure(shard, batch, error)

    # ------------------------------------------------------------------ #
    # Registration and loading
    # ------------------------------------------------------------------ #
    def register(self, name: str, classifier: SomClassifier) -> ShardGroup:
        """Register a fitted classifier under ``name`` and build its shards."""
        if not name:
            raise ConfigurationError("model name must be a non-empty string")
        if classifier.labelling is None:
            raise DataError(
                f"model {name!r} must be fitted (or labelled) before it can serve"
            )
        with self._lock:
            if name in self._groups:
                raise ConfigurationError(f"a model named {name!r} is already registered")
            group = ShardGroup(
                name,
                classifier,
                self._dispatch_completion,
                failure=self._dispatch_failure,
                n_shards=self.n_shards,
                policy=self.policy,
                queue_capacity=self.queue_capacity,
                backend=self.backend,
            )
            self._groups[name] = group
            self._classifiers[name] = classifier
            if self._started:
                group.start()
            return group

    def load(self, name: str, path: PathLike) -> SomClassifier:
        """Load a classifier snapshot saved by ``save_model`` and register it."""
        model = load_model(path)
        if not isinstance(model, SomClassifier):
            raise DataError(
                f"snapshot {path} holds a bare {type(model).__name__}, not a "
                "SomClassifier; save the fitted classifier, not just the map"
            )
        self.register(name, model)
        return model

    def evict(self, name: str) -> SomClassifier:
        """Unregister ``name``, stop its shards, and return its classifier."""
        with self._lock:
            group = self._groups.pop(name, None)
            if group is None:
                raise UnknownModelError(name, tuple(self._groups))
            classifier = self._classifiers.pop(name)
        group.stop()
        return classifier

    # ------------------------------------------------------------------ #
    # Lookup and routing
    # ------------------------------------------------------------------ #
    def group(self, name: str) -> ShardGroup:
        with self._lock:
            group = self._groups.get(name)
            if group is None:
                raise UnknownModelError(name, tuple(self._groups))
            return group

    def classifier(self, name: str) -> SomClassifier:
        with self._lock:
            classifier = self._classifiers.get(name)
            if classifier is None:
                raise UnknownModelError(name, tuple(self._classifiers))
            return classifier

    def submit(self, batch: MicroBatch) -> WorkerShard:
        """Route a micro-batch to a shard of its model."""
        return self.group(batch.model).submit(batch)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._groups)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._groups

    def __len__(self) -> int:
        with self._lock:
            return len(self._groups)

    # ------------------------------------------------------------------ #
    # Lifecycle and telemetry
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        with self._lock:
            self._started = True
            groups = list(self._groups.values())
        for group in groups:
            group.start()

    def stop(self, timeout: float = 5.0) -> None:
        with self._lock:
            self._started = False
            groups = list(self._groups.values())
        for group in groups:
            group.stop(timeout)

    def queue_depths(self) -> dict[str, int]:
        """Queued batches per shard across every registered model."""
        with self._lock:
            groups = list(self._groups.values())
        depths: dict[str, int] = {}
        for group in groups:
            depths.update(group.queue_depths())
        return depths
