"""Service telemetry: latency percentiles, batch fill, cache and queues.

Production serving lives and dies by a handful of signals, and the paper's
throughput story (Table IV / figure 6) is exactly such a signal for the
FPGA.  This module keeps the software service honest the same way:

* request latency (submit-to-resolve) with p50/p95/p99 percentiles over a
  bounded sliding window of recent samples,
* batch fill -- how close the micro-batcher gets to its configured batch
  size, the lever that trades latency for throughput,
* cache hit rate, mirrored from the signature LRU cache, and
* per-shard queue depth plus a count of backpressure rejections.

Everything is counter- or window-based and guarded by one lock; recording
is O(1) so shards can call it on the hot path.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time view of the service's health.

    Attributes
    ----------
    requests_total:
        Requests accepted (cache hits included).
    responses_total:
        Requests resolved with a classification.
    cache_hits, cache_misses, cache_hit_rate:
        Signature-cache effectiveness.
    dedup_hits:
        Requests answered by fanning out another identical in-flight
        request's kernel execution (cross-request deduplication).  Counted
        separately from cache hits: the cache answers *completed*
        signatures, dedup coalesces *concurrent* ones.
    model_swaps:
        Hot-swaps (:meth:`StreamingInferenceService.swap_model`) performed.
    backpressure_rejections:
        Requests refused because queues were saturated.
    batches_total:
        Micro-batches dispatched to shards.
    mean_batch_fill:
        Average fill fraction of dispatched batches (1.0 = always full).
    mean_batch_size:
        Average number of requests per dispatched batch.
    latency_p50_ms, latency_p95_ms, latency_p99_ms:
        Percentiles over the recent-latency window, in milliseconds.
    queue_depths:
        Batches queued per shard, keyed by shard name, at snapshot time.
    """

    requests_total: int
    responses_total: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    dedup_hits: int
    model_swaps: int
    backpressure_rejections: int
    batches_total: int
    mean_batch_fill: float
    mean_batch_size: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    queue_depths: dict[str, int] = field(default_factory=dict)


class ServiceMetrics:
    """Thread-safe accumulator behind :class:`MetricsSnapshot`.

    Parameters
    ----------
    latency_window:
        Number of most recent latency samples retained for the percentile
        estimates.  Bounded so a long-running service cannot grow without
        limit; 4096 samples give stable p99 estimates at realistic rates.
    """

    def __init__(self, latency_window: int = 4096):
        if latency_window <= 0:
            raise ConfigurationError(
                f"latency_window must be positive, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=int(latency_window))
        self.requests_total = 0
        self.responses_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self.model_swaps = 0
        self.backpressure_rejections = 0
        self.batches_total = 0
        self._fill_sum = 0.0
        self._size_sum = 0

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #
    def record_request(self) -> None:
        with self._lock:
            self.requests_total += 1

    def record_response(self, latency_s: float) -> None:
        with self._lock:
            self.responses_total += 1
            self._latencies.append(float(latency_s))

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    @property
    def cache_hit_ratio(self) -> float:
        """Live cache-hit-ratio gauge: hits / lookups so far (0.0 unused).

        The same quantity as :attr:`MetricsSnapshot.cache_hit_rate`, but
        readable without freezing a full snapshot -- dashboards and the
        benchmark harness poll it per tick.
        """
        with self._lock:
            lookups = self.cache_hits + self.cache_misses
            return self.cache_hits / lookups if lookups else 0.0

    def record_dedup(self, count: int = 1) -> None:
        """Count requests coalesced onto an identical in-flight signature."""
        with self._lock:
            self.dedup_hits += int(count)

    def record_swap(self) -> None:
        """Count one zero-drop model hot-swap."""
        with self._lock:
            self.model_swaps += 1

    def record_backpressure(self, count: int = 1) -> None:
        """Count refused requests (a shed batch refuses all its members)."""
        with self._lock:
            self.backpressure_rejections += int(count)

    def record_batch(self, size: int, fill_fraction: float) -> None:
        with self._lock:
            self.batches_total += 1
            self._fill_sum += float(fill_fraction)
            self._size_sum += int(size)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def latency_percentile_ms(self, percentile: float) -> float:
        """Latency percentile over the retained window, in milliseconds."""
        if not 0.0 <= percentile <= 100.0:
            raise ConfigurationError(
                f"percentile must lie in [0, 100], got {percentile}"
            )
        with self._lock:
            if not self._latencies:
                return 0.0
            samples = np.asarray(self._latencies, dtype=np.float64)
        return float(np.percentile(samples, percentile)) * 1e3

    def snapshot(self, queue_depths: dict[str, int] | None = None) -> MetricsSnapshot:
        """Freeze the counters (and optional shard queue depths) for reporting."""
        with self._lock:
            lookups = self.cache_hits + self.cache_misses
            samples = np.asarray(self._latencies, dtype=np.float64)
            counters = dict(
                requests_total=self.requests_total,
                responses_total=self.responses_total,
                cache_hits=self.cache_hits,
                cache_misses=self.cache_misses,
                cache_hit_rate=self.cache_hits / lookups if lookups else 0.0,
                dedup_hits=self.dedup_hits,
                model_swaps=self.model_swaps,
                backpressure_rejections=self.backpressure_rejections,
                batches_total=self.batches_total,
                mean_batch_fill=(
                    self._fill_sum / self.batches_total if self.batches_total else 0.0
                ),
                mean_batch_size=(
                    self._size_sum / self.batches_total if self.batches_total else 0.0
                ),
            )
        if samples.size:
            p50, p95, p99 = np.percentile(samples, (50.0, 95.0, 99.0)) * 1e3
        else:
            p50 = p95 = p99 = 0.0
        return MetricsSnapshot(
            latency_p50_ms=float(p50),
            latency_p95_ms=float(p95),
            latency_p99_ms=float(p99),
            queue_depths=dict(queue_depths or {}),
            **counters,
        )
