"""Service telemetry: latency percentiles, batch fill, cache and queues.

Production serving lives and dies by a handful of signals, and the paper's
throughput story (Table IV / figure 6) is exactly such a signal for the
FPGA.  This module keeps the software service honest the same way:

* request latency (submit-to-resolve) with p50/p95/p99/p999 percentiles
  estimated from a fixed-bucket histogram (no raw samples stored),
* batch fill -- how close the micro-batcher gets to its configured batch
  size, the lever that trades latency for throughput,
* cache hit rate, mirrored from the signature LRU cache, and
* per-shard queue depth plus a count of backpressure rejections.

Since the unified observability layer landed, :class:`ServiceMetrics` is a
facade over a :class:`repro.obs.MetricRegistry`: every counter and the
latency histogram live in the registry under stable ``serve_*`` names (in
seconds -- milliseconds appear only in rendered snapshots), so the JSONL
and Prometheus exporters in :mod:`repro.obs.export` see the service's
telemetry without any serve-specific glue.  The legacy surface --
attribute reads like ``metrics.responses_total`` and the frozen
:class:`MetricsSnapshot` -- is unchanged.

Registry metric names (the vocabulary ``BENCH_serve.json`` will commit):

==========================================  =========  =======================
``serve_requests_total``                    counter    requests accepted
``serve_responses_total``                   counter    requests resolved
``serve_cache_hits_total``                  counter    signature-cache hits
``serve_cache_misses_total``                counter    signature-cache misses
``serve_dedup_hits_total``                  counter    in-flight coalesces
``serve_model_swaps_total``                 counter    zero-drop hot-swaps
``serve_backpressure_rejections_total``     counter    refused requests
``serve_batches_total``                     counter    micro-batches cut
``serve_batch_fill_fraction_sum``           counter    summed fill fractions
``serve_batch_size_sum``                    counter    summed batch sizes
``serve_request_latency_seconds``           histogram  submit-to-resolve
``serve_shard_queue_depth{shard=...}``      gauge      queued batches
``serve_retries_total``                     counter    submit retries (backoff)
``serve_deadline_exceeded_total``           counter    requests shed past deadline
``serve_stale_hits_total``                  counter    stale-cache degradations
``serve_shard_restarts_total``              counter    supervisor restarts
``serve_cache_errors_total``                counter    cache faults -> miss
``serve_shard_leaks_total``                 counter    wedged threads at stop
``serve_breaker_state{model,shard}``        gauge      0 closed/1 half/2 open
``serve_shadow_requests_total{model}``      counter    requests mirrored to shadow
``serve_shadow_disagreements_total{model}`` counter    shadow/primary disagreements
``serve_shadow_dropped_total{model}``       counter    mirrors shed (queue full)
``serve_rollout_promotions_total``          counter    candidates promoted
``serve_rollout_demotions_total``           counter    candidates demoted
``serve_rollout_rollbacks_total``           counter    ring rollbacks applied
``serve_rollout_promote_failures_total``    counter    promote swaps that failed
``serve_rollout_stage{model}``              gauge      rollout stage code
==========================================  =========  =======================

(The breaker-state gauge is owned by
:class:`repro.serve.resilience.BreakerBoard`, the shadow/rollout series by
:class:`repro.serve.rollout.RolloutManager` -- stage codes are
:data:`repro.serve.rollout.ROLLOUT_STAGE_CODES`; they live in the same
registry so exporters see them alongside the counters above.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricRegistry, read_consistent


@dataclass(frozen=True)
class MetricsSnapshot:
    """Point-in-time view of the service's health.

    Attributes
    ----------
    requests_total:
        Requests accepted (cache hits included).
    responses_total:
        Requests resolved with a classification.
    cache_hits, cache_misses, cache_hit_rate:
        Signature-cache effectiveness.
    dedup_hits:
        Requests answered by fanning out another identical in-flight
        request's kernel execution (cross-request deduplication).  Counted
        separately from cache hits: the cache answers *completed*
        signatures, dedup coalesces *concurrent* ones.
    model_swaps:
        Hot-swaps (:meth:`StreamingInferenceService.swap_model`) performed.
    backpressure_rejections:
        Requests refused because queues were saturated.
    batches_total:
        Micro-batches dispatched to shards.
    mean_batch_fill:
        Average fill fraction of dispatched batches (1.0 = always full).
    mean_batch_size:
        Average number of requests per dispatched batch.
    latency_p50_ms, latency_p95_ms, latency_p99_ms, latency_p999_ms:
        Percentile estimates from the latency histogram, rendered in
        milliseconds (stored in seconds internally).
    retries:
        Submit attempts re-tried under the backoff policy after a
        transient :class:`~repro.errors.ServiceOverloadedError`.
    deadline_exceeded:
        Requests shed because their ``deadline_s`` budget expired before a
        kernel could score them.
    stale_hits:
        Requests answered from the stale cache tier while every shard
        breaker of their model was open (graceful degradation).
    shard_restarts:
        Dead/wedged workers replaced by the shard supervisor.
    cache_errors:
        Cache get/put faults degraded to misses (request still served).
    shard_leaks:
        Worker threads that failed to join at stop (wedged past timeout).
    queue_depths:
        Batches queued per shard, keyed by shard name, at snapshot time.
    """

    requests_total: int
    responses_total: int
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    dedup_hits: int
    model_swaps: int
    backpressure_rejections: int
    batches_total: int
    mean_batch_fill: float
    mean_batch_size: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_p999_ms: float = 0.0
    retries: int = 0
    deadline_exceeded: int = 0
    stale_hits: int = 0
    shard_restarts: int = 0
    cache_errors: int = 0
    shard_leaks: int = 0
    queue_depths: dict[str, int] = field(default_factory=dict)


class ServiceMetrics:
    """Thread-safe accumulator behind :class:`MetricsSnapshot`.

    Parameters
    ----------
    registry:
        The :class:`~repro.obs.MetricRegistry` to register the ``serve_*``
        metrics in; a service passes its observability registry so one
        exporter pass sees everything.  A private registry is built when
        omitted (standalone use and tests).
    """

    def __init__(self, registry: Optional[MetricRegistry] = None):
        self.registry = registry if registry is not None else MetricRegistry()
        reg = self.registry
        self._requests = reg.counter(
            "serve_requests_total", help="Requests accepted (cache hits included)"
        )
        self._responses = reg.counter(
            "serve_responses_total", help="Requests resolved with a classification"
        )
        self._cache_hits = reg.counter(
            "serve_cache_hits_total", help="Signature-cache hits"
        )
        self._cache_misses = reg.counter(
            "serve_cache_misses_total", help="Signature-cache misses"
        )
        self._dedup = reg.counter(
            "serve_dedup_hits_total", help="Requests coalesced onto in-flight twins"
        )
        self._swaps = reg.counter(
            "serve_model_swaps_total", help="Zero-drop model hot-swaps"
        )
        self._backpressure = reg.counter(
            "serve_backpressure_rejections_total",
            help="Requests refused under saturation",
        )
        self._batches = reg.counter(
            "serve_batches_total", help="Micro-batches dispatched to shards"
        )
        self._fill_sum = reg.counter(
            "serve_batch_fill_fraction_sum",
            help="Summed fill fractions of dispatched batches",
        )
        self._size_sum = reg.counter(
            "serve_batch_size_sum", help="Summed sizes of dispatched batches"
        )
        self._latency = reg.histogram(
            "serve_request_latency_seconds",
            help="Submit-to-resolve request latency in seconds",
        )
        self._retries = reg.counter(
            "serve_retries_total", help="Submit retries under the backoff policy"
        )
        self._deadline_exceeded = reg.counter(
            "serve_deadline_exceeded_total",
            help="Requests shed because their deadline expired",
        )
        self._stale_hits = reg.counter(
            "serve_stale_hits_total",
            help="Requests answered from the stale cache tier (breaker open)",
        )
        self._shard_restarts = reg.counter(
            "serve_shard_restarts_total",
            help="Dead/wedged workers replaced by the supervisor",
        )
        self._cache_errors = reg.counter(
            "serve_cache_errors_total",
            help="Signature-cache faults degraded to misses",
        )
        self._shard_leaks = reg.counter(
            "serve_shard_leaks_total",
            help="Worker threads that failed to join at stop",
        )

    # ------------------------------------------------------------------ #
    # Recording (hot path)
    # ------------------------------------------------------------------ #
    def record_request(self) -> None:
        self._requests.inc()

    def record_response(self, latency_s: float) -> None:
        self._responses.inc()
        self._latency.observe(float(latency_s))

    def record_cache(self, hit: bool) -> None:
        if hit:
            self._cache_hits.inc()
        else:
            self._cache_misses.inc()

    @property
    def cache_hit_ratio(self) -> float:
        """Live cache-hit-ratio gauge: hits / lookups so far (0.0 unused).

        The same quantity as :attr:`MetricsSnapshot.cache_hit_rate`, but
        readable without freezing a full snapshot -- dashboards and the
        benchmark harness poll it per tick.  Hits and misses are read in
        one critical section (:func:`~repro.obs.metrics.read_consistent`
        holds both counters' locks), so a recorder slipping between two
        separate reads can never skew the ratio.
        """
        hits, misses = read_consistent(self._cache_hits, self._cache_misses)
        lookups = hits + misses
        return hits / lookups if lookups else 0.0

    def record_dedup(self, count: int = 1) -> None:
        """Count requests coalesced onto an identical in-flight signature."""
        self._dedup.inc(int(count))

    def record_swap(self) -> None:
        """Count one zero-drop model hot-swap."""
        self._swaps.inc()

    def record_backpressure(self, count: int = 1) -> None:
        """Count refused requests (a shed batch refuses all its members)."""
        self._backpressure.inc(int(count))

    def record_batch(self, size: int, fill_fraction: float) -> None:
        self._batches.inc()
        self._fill_sum.inc(float(fill_fraction))
        self._size_sum.inc(int(size))

    def record_retry(self, count: int = 1) -> None:
        """Count a submit re-attempt under the retry/backoff policy."""
        self._retries.inc(int(count))

    def record_deadline_exceeded(self, count: int = 1) -> None:
        """Count requests shed because their deadline expired."""
        self._deadline_exceeded.inc(int(count))

    def record_stale_hit(self, count: int = 1) -> None:
        """Count stale-cache answers served while a breaker was open."""
        self._stale_hits.inc(int(count))

    def record_shard_restart(self, count: int = 1) -> None:
        """Count supervisor restarts of dead/wedged workers."""
        self._shard_restarts.inc(int(count))

    def record_cache_error(self, count: int = 1) -> None:
        """Count cache get/put faults degraded to misses."""
        self._cache_errors.inc(int(count))

    def record_shard_leak(self, count: int = 1) -> None:
        """Count worker threads that failed to join at stop."""
        self._shard_leaks.inc(int(count))

    # ------------------------------------------------------------------ #
    # Legacy attribute surface (reads the registry counters)
    # ------------------------------------------------------------------ #
    @property
    def requests_total(self) -> int:
        return int(self._requests.value)

    @property
    def responses_total(self) -> int:
        return int(self._responses.value)

    @property
    def cache_hits(self) -> int:
        return int(self._cache_hits.value)

    @property
    def cache_misses(self) -> int:
        return int(self._cache_misses.value)

    @property
    def dedup_hits(self) -> int:
        return int(self._dedup.value)

    @property
    def model_swaps(self) -> int:
        return int(self._swaps.value)

    @property
    def backpressure_rejections(self) -> int:
        return int(self._backpressure.value)

    @property
    def batches_total(self) -> int:
        return int(self._batches.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    @property
    def deadline_exceeded(self) -> int:
        return int(self._deadline_exceeded.value)

    @property
    def stale_hits(self) -> int:
        return int(self._stale_hits.value)

    @property
    def shard_restarts(self) -> int:
        return int(self._shard_restarts.value)

    @property
    def cache_errors(self) -> int:
        return int(self._cache_errors.value)

    @property
    def shard_leaks(self) -> int:
        return int(self._shard_leaks.value)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def latency_percentile_ms(self, percentile: float) -> float:
        """Latency percentile estimate in milliseconds (stored in seconds)."""
        if not 0.0 <= percentile <= 100.0:
            raise ConfigurationError(
                f"percentile must lie in [0, 100], got {percentile}"
            )
        return self._latency.quantile(percentile / 100.0) * 1e3

    def snapshot(self, queue_depths: dict[str, int] | None = None) -> MetricsSnapshot:
        """Freeze the counters (and optional shard queue depths) for reporting."""
        depths = dict(queue_depths or {})
        for shard, depth in depths.items():
            self.registry.gauge(
                "serve_shard_queue_depth",
                labels={"shard": shard},
                help="Micro-batches queued per worker shard",
            ).set(depth)
        hits, misses = (
            int(v) for v in read_consistent(self._cache_hits, self._cache_misses)
        )
        lookups = hits + misses
        batches = int(self._batches.value)
        return MetricsSnapshot(
            requests_total=int(self._requests.value),
            responses_total=int(self._responses.value),
            cache_hits=hits,
            cache_misses=misses,
            cache_hit_rate=hits / lookups if lookups else 0.0,
            dedup_hits=int(self._dedup.value),
            model_swaps=int(self._swaps.value),
            backpressure_rejections=int(self._backpressure.value),
            batches_total=batches,
            mean_batch_fill=self._fill_sum.value / batches if batches else 0.0,
            mean_batch_size=self._size_sum.value / batches if batches else 0.0,
            latency_p50_ms=self._latency.quantile(0.50) * 1e3,
            latency_p95_ms=self._latency.quantile(0.95) * 1e3,
            latency_p99_ms=self._latency.quantile(0.99) * 1e3,
            latency_p999_ms=self._latency.quantile(0.999) * 1e3,
            retries=int(self._retries.value),
            deadline_exceeded=int(self._deadline_exceeded.value),
            stale_hits=int(self._stale_hits.value),
            shard_restarts=int(self._shard_restarts.value),
            cache_errors=int(self._cache_errors.value),
            shard_leaks=int(self._shard_leaks.value),
            queue_depths=depths,
        )
