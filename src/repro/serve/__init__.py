"""Streaming inference service for multi-camera deployments.

The paper deploys one bSOM behind one camera; this subpackage scales the
reproduction toward the ROADMAP's many-camera, heavy-traffic goal.  The
moving parts, front to back:

* :mod:`repro.serve.request` -- request/response values and the small
  future (:class:`PendingResult`) a caller waits on,
* :mod:`repro.serve.batching` -- the micro-batching scheduler: size- and
  deadline-bounded batches per model, so many single-signature requests
  are scored in one vectorised ``predict_batch`` call,
* :mod:`repro.serve.cache` -- an LRU cache keyed on packed signatures;
  repeated silhouettes skip the SOM entirely,
* :mod:`repro.serve.shard` -- thread-backed worker shards with
  round-robin / least-loaded routing and bounded queues,
* :mod:`repro.serve.registry` -- named model snapshots
  (:class:`~repro.core.snapshot.ModelSnapshot` or fitted classifiers),
  each behind its own shard group, with zero-drop hot-reload
  (:meth:`ModelRegistry.swap`) and fail-fast eviction,
* :mod:`repro.serve.metrics` -- latency percentiles, batch fill, cache
  hit-rate, dedup fan-out, swap and queue-depth telemetry, registered in
  the service's :class:`repro.obs.MetricRegistry` so the exporters in
  :mod:`repro.obs.export` scrape it (per-request traces and lifecycle
  events live in :mod:`repro.obs` too),
* :mod:`repro.serve.service` -- the front-end wiring it all together with
  backpressure and cross-request deduplication of identical in-flight
  signatures,
* :mod:`repro.serve.resilience` -- the always-on safety net: per-request
  deadlines, retry with jittered backoff, per-(model, shard) circuit
  breakers with stale-cache degradation, a shard supervisor that restarts
  dead/wedged workers, and the deterministic :class:`FaultInjector` the
  chaos gate (``scripts/check_resilience.py``) drives them with,
* :mod:`repro.serve.rollout` -- guarded model rollouts: candidates shadow
  live traffic (:class:`ShadowEvaluator`), optionally take a seeded canary
  split (:meth:`ModelRegistry.set_route`), and are promoted or demoted by
  a :class:`RolloutPolicy`, with a bounded rollback ring of replaced
  versions (``scripts/check_rollout.py`` is the gate), and
* :mod:`repro.serve.streams` -- simulated camera streams for load tests,
  demos and benchmarks.

Quick start (see :mod:`repro.api` for the full lifecycle facade)
----------------------------------------------------------------
>>> from repro.serve import ServiceConfig, StreamingInferenceService
>>> service = StreamingInferenceService(config=ServiceConfig(batch_size=16))
>>> service.register_model("hall", fitted_classifier)       # doctest: +SKIP
>>> with service:                                           # doctest: +SKIP
...     future = service.submit(signature, model="hall", stream_id="cam-0")
...     response = future.result()
...     service.swap_model("hall", new_snapshot)  # zero-drop hot-reload
"""

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    InjectedFaultError,
    ModelEvictedError,
    ResultTimeoutError,
    ShardFailedError,
    SnapshotCorruptionError,
    UnknownModelError,
)
from repro.serve.batching import MicroBatch, MicroBatchScheduler
from repro.serve.cache import CachedOutcome, SignatureLruCache
from repro.serve.metrics import MetricsSnapshot, ServiceMetrics
from repro.serve.registry import ModelRegistry, ModelSource, TrafficRoute
from repro.serve.request import (
    ClassificationRequest,
    ClassificationResponse,
    PendingResult,
)
from repro.serve.resilience import (
    CACHE_CODEC,
    FAULT_SITES,
    KERNEL_HANG,
    KERNEL_RAISE,
    PROMOTE_FAILURE,
    SHARD_DEATH,
    SNAPSHOT_CORRUPT,
    SWAP_FAILURE,
    BreakerBoard,
    BreakerConfig,
    CircuitBreaker,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.serve.rollout import (
    ROLLOUT_STAGE_CODES,
    RolloutConfig,
    RolloutManager,
    RolloutPolicy,
    RolloutStatus,
    ShadowEvaluator,
    ShadowStats,
)
from repro.serve.service import ServiceConfig, StreamingInferenceService
from repro.serve.shard import ShardGroup, WorkerShard
from repro.serve.streams import SimulatedCameraStream, StreamReport, drive_streams

__all__ = [
    "MicroBatch",
    "MicroBatchScheduler",
    "CachedOutcome",
    "SignatureLruCache",
    "MetricsSnapshot",
    "ServiceMetrics",
    "ModelRegistry",
    "ModelSource",
    "TrafficRoute",
    "ModelEvictedError",
    "UnknownModelError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "InjectedFaultError",
    "ResultTimeoutError",
    "ShardFailedError",
    "SnapshotCorruptionError",
    "ClassificationRequest",
    "ClassificationResponse",
    "PendingResult",
    "CACHE_CODEC",
    "FAULT_SITES",
    "KERNEL_HANG",
    "KERNEL_RAISE",
    "PROMOTE_FAILURE",
    "SHARD_DEATH",
    "SNAPSHOT_CORRUPT",
    "SWAP_FAILURE",
    "BreakerBoard",
    "BreakerConfig",
    "CircuitBreaker",
    "FaultInjector",
    "FaultSpec",
    "RetryPolicy",
    "ShardSupervisor",
    "SupervisorConfig",
    "ROLLOUT_STAGE_CODES",
    "RolloutConfig",
    "RolloutManager",
    "RolloutPolicy",
    "RolloutStatus",
    "ShadowEvaluator",
    "ShadowStats",
    "ServiceConfig",
    "StreamingInferenceService",
    "ShardGroup",
    "WorkerShard",
    "SimulatedCameraStream",
    "StreamReport",
    "drive_streams",
]
