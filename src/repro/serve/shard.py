"""Worker shards: thread-backed batch executors behind each model.

A shard owns a bounded queue of micro-batches and a worker thread that
classifies each batch in one :meth:`SomClassifier.predict_batch` call.  A
:class:`ShardGroup` fronts the N shards of one model and picks a shard per
batch using one of two routing policies:

* ``round_robin`` -- rotate through the shards, skipping full queues, and
* ``least_loaded`` -- send the batch to the shard with the smallest load
  (queued batches plus the one in flight).

When every shard's queue is full the group raises
:class:`~repro.errors.ServiceOverloadedError` -- the backpressure signal the
service surfaces to callers instead of buffering without bound.  When a
breaker gate is bound (:class:`~repro.serve.resilience.BreakerBoard` via
the registry) the router additionally skips shards whose circuit breaker
is open, and raises :class:`~repro.errors.CircuitOpenError` when *every*
shard of the model is gated off.

Shards deliberately do not resolve request futures themselves: they hand
``(batch, BatchPrediction)`` to a completion callback supplied by the
service, which owns the cache and the metrics.  That keeps the shard loop
model-only and lets tests drive a shard without a full service around it.

Supervision protocol
--------------------
Python threads cannot be killed, so a wedged worker (hung kernel) is
*abandoned*, not stopped: the supervisor takes the in-flight batch, fails
its futures terminally, bumps the shard's **epoch**, and starts a
replacement thread on the same queue.  Two rules keep that race-free:

* the worker **claims** its batch (:meth:`WorkerShard._claim`, under the
  shard lock) before delivering results -- an abandoned worker's claim
  fails because the supervisor already took the batch, so a late kernel
  result is discarded instead of double-delivered, and
* every busy-state mutation is guarded by the epoch captured at thread
  start, so a stale worker can never clobber its replacement's state; on
  its next queue read it hands the item back and exits.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from typing import Callable, Optional

from repro.core.classifier import BatchPrediction, SomClassifier
from repro.errors import (
    CircuitOpenError,
    ConfigurationError,
    DeadlineExceededError,
    ServiceOverloadedError,
)
from repro.serve.batching import MicroBatch
from repro.serve.resilience import (
    KERNEL_HANG,
    KERNEL_RAISE,
    SHARD_DEATH,
    FaultInjector,
)

import numpy as np

logger = logging.getLogger(__name__)

#: Signature of the completion callback shards invoke after each batch.
CompletionCallback = Callable[["WorkerShard", MicroBatch, BatchPrediction], None]

#: Signature of the failure callback invoked when classification raises.
FailureCallback = Callable[["WorkerShard", MicroBatch, BaseException], None]

#: Signature of the breaker gate the router consults per (model, shard).
BreakerGate = Callable[[str, str], bool]

_ROUTING_POLICIES = ("round_robin", "least_loaded")


class WorkerShard:
    """One worker thread + bounded batch queue for one model replica.

    Parameters
    ----------
    name:
        Unique shard name (``"<model>/<index>"`` in a group); keys the
        per-shard queue-depth telemetry.
    classifier:
        The fitted classifier replica this shard scores batches with.
    completion:
        Called with ``(shard, batch, prediction)`` after each batch; errors
        during classification are delivered to the batch's futures instead.
    failure:
        Called with ``(shard, batch, error)`` after classification raises
        (the futures have already received the error); the service uses it
        to release the batch's pending-budget slots so a failing model
        cannot permanently exhaust ``max_pending``.
    queue_capacity:
        Maximum queued batches before :meth:`try_submit` refuses.
    clock:
        Monotonic time source for trace timestamps (kernel spans) and the
        busy heartbeat the supervisor reads, shared with the service's
        tracer; injectable for tests.
    fault_injector:
        Optional :class:`~repro.serve.resilience.FaultInjector`; arms the
        ``kernel_raise`` / ``kernel_hang`` / ``shard_death`` sites.
    """

    def __init__(
        self,
        name: str,
        classifier: SomClassifier,
        completion: CompletionCallback,
        *,
        failure: Optional[FailureCallback] = None,
        queue_capacity: int = 8,
        clock: Callable[[], float] = time.monotonic,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {queue_capacity}"
            )
        self.name = name
        self.classifier = classifier
        self._completion = completion
        self._failure = failure
        self._clock = clock
        self._injector = fault_injector
        self._queue: "queue.Queue[Optional[MicroBatch]]" = queue.Queue(
            maxsize=int(queue_capacity)
        )
        self._thread: Optional[threading.Thread] = None
        self._in_flight = 0
        self._lock = threading.Lock()
        self._epoch = 0
        self._busy_since: Optional[float] = None
        self._current_batch: Optional[MicroBatch] = None
        self._stopped = False
        self._disabled = False
        self.restarts = 0
        self.leaked = False
        self.processed_batches = 0
        self.processed_requests = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stopped = False
        with self._lock:
            epoch = self._epoch
        self._thread = threading.Thread(
            target=self._run, args=(epoch,), name=f"shard-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> bool:
        """Drain the queue, then stop the worker thread.

        Returns ``True`` when the worker exited within ``timeout``.  A
        worker that is still alive after the join -- wedged in a kernel, or
        starved by a saturated machine -- is *reported*, not silently
        forgotten: the shard is flagged ``leaked``, a warning is logged,
        and ``False`` is returned so the registry can count the leak.  The
        daemon thread cannot block interpreter exit either way.
        """
        if self._thread is None:
            return True
        self._stopped = True
        self._queue.put(None)  # sentinel; everything queued before it drains
        thread = self._thread
        thread.join(timeout)
        self._thread = None
        if thread.is_alive():
            self.leaked = True
            logger.warning(
                "worker shard %r did not stop within %.1fs; thread %s leaked",
                self.name,
                timeout,
                thread.name,
            )
            return False
        return True

    def restart(self) -> None:
        """Replace the worker thread (supervisor recovery path).

        Bumps the epoch so the previous worker -- dead, or wedged and
        abandoned -- can never claim a batch or clobber busy-state again,
        then starts a fresh thread on the *same* queue, so batches queued
        behind the failure are re-dispatched automatically.
        """
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            self._current_batch = None
            self._busy_since = None
            self._in_flight = 0
        self.restarts += 1
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run,
            args=(epoch,),
            name=f"shard-{self.name}-r{self.restarts}",
            daemon=True,
        )
        self._thread.start()

    def abandon_current(self, error: BaseException) -> int:
        """Fail the in-flight batch and invalidate the current worker.

        The supervisor calls this for a dead or wedged worker: the batch's
        futures become terminal with ``error``, the failure callback runs
        (releasing the service's pending budget), and the epoch bump makes
        any late delivery attempt by the old worker a no-op.  Returns the
        number of requests failed.
        """
        with self._lock:
            batch = self._current_batch
            self._current_batch = None
            self._busy_since = None
            self._in_flight = 0
            self._epoch += 1
        if batch is None:
            return 0
        for request in batch.requests:
            request.pending.set_exception(error)
        if self._failure is not None:
            self._failure(self, batch, error)
        return len(batch)

    def disable(self, error: BaseException) -> None:
        """Take the shard out of service (restart budget exhausted).

        The in-flight batch and everything queued are failed terminally;
        :meth:`try_submit` refuses from now on, so the router stops
        selecting this shard and the group's breaker accounting treats it
        as permanently open.
        """
        self._disabled = True
        self.abandon_current(error)
        self.cancel_queued(error)

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    # Supervisor surface
    # ------------------------------------------------------------------ #
    @property
    def thread_alive(self) -> bool:
        """Is the current worker thread alive?  (Heartbeat: liveness.)"""
        return self._thread is not None and self._thread.is_alive()

    def busy_seconds(self, now: float) -> Optional[float]:
        """How long the worker has been on its current batch (heartbeat:
        progress); ``None`` when idle."""
        with self._lock:
            if self._busy_since is None:
                return None
            return now - self._busy_since

    @property
    def supervisable(self) -> bool:
        """Should the watchdog act on this shard?  Started, not stopping,
        not disabled."""
        return self._thread is not None and not self._stopped and not self._disabled

    @property
    def disabled(self) -> bool:
        return self._disabled

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def try_submit(self, batch: MicroBatch) -> bool:
        """Queue a batch; ``False`` when the queue is full (backpressure)
        or the shard has been disabled by the supervisor."""
        if self._disabled:
            return False
        try:
            self._queue.put_nowait(batch)
            return True
        except queue.Full:
            return False

    def cancel_queued(self, error: BaseException) -> int:
        """Fail every queued (not yet running) batch with ``error``.

        Used by model eviction: queued futures get a prompt, catchable
        error instead of hanging until their timeout.  Batches the worker
        already pulled are unaffected (they complete normally); stop
        sentinels found in the queue are preserved.  Returns the number of
        requests failed.
        """
        drained: list[Optional[MicroBatch]] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                break
        cancelled = 0
        for batch in drained:
            if batch is None:
                self._queue.put(None)
                continue
            for request in batch.requests:
                request.pending.set_exception(error)
            if self._failure is not None:
                self._failure(self, batch, error)
            cancelled += len(batch)
        return cancelled

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def load(self) -> int:
        """Queued batches plus the batch currently being classified."""
        with self._lock:
            return self._queue.qsize() + self._in_flight

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    def _run(self, epoch: int) -> None:
        while True:
            batch = self._queue.get()
            with self._lock:
                stale = epoch != self._epoch
                if not stale and batch is not None:
                    self._in_flight = 1
                    self._busy_since = self._clock()
                    self._current_batch = batch
            if stale:
                # Abandoned while blocked on the queue: hand the item
                # (batch or stop sentinel) to the replacement worker.
                self._queue.put(batch)
                return
            if batch is None:
                return
            if self._injector is not None and self._injector.fires(SHARD_DEATH):
                # Simulated worker death: exit with the batch still
                # claimed as in-flight, exactly like an uncaught error
                # killing the thread.  The supervisor must notice the dead
                # thread, fail the batch and start a replacement.
                return
            if not self._process(batch, epoch):
                return  # abandoned mid-batch; a replacement owns the queue

    def _claim(self, batch: MicroBatch, epoch: int) -> bool:
        """Atomically take delivery rights for ``batch``.

        Fails when the supervisor abandoned this worker (epoch bumped
        and/or batch taken) -- the caller must then discard its result and
        exit, because the batch's futures already received a terminal
        :class:`~repro.errors.ShardFailedError`.
        """
        with self._lock:
            if epoch != self._epoch or self._current_batch is not batch:
                return False
            self._current_batch = None
            self._busy_since = None
            self._in_flight = 0
            return True

    def _process(self, batch: MicroBatch, epoch: int) -> bool:
        """Run one batch end to end; ``False`` when this worker was
        abandoned and must exit."""
        live: Optional[MicroBatch] = batch
        if any(r.deadline_at is not None for r in batch.requests):
            # Second (pre-kernel) deadline shed: requests that expired
            # while queued behind earlier batches are failed here instead
            # of paying for a kernel they can no longer use.
            live, expired = batch.partition_expired(self._clock())
            if expired is not None:
                with self._lock:
                    if epoch != self._epoch:
                        return False
                    self._current_batch = live
                error = DeadlineExceededError(batch.model)
                for request in expired.requests:
                    request.pending.set_exception(error)
                if self._failure is not None:
                    self._failure(self, expired, error)
                if live is None:
                    with self._lock:
                        if epoch == self._epoch:
                            self._busy_since = None
                            self._in_flight = 0
                    return True
        try:
            prediction = self._classify(live)
        except BaseException as error:  # deliver, never kill the worker
            if not self._claim(live, epoch):
                return False
            for request in live.requests:
                request.pending.set_exception(error)
            if self._failure is not None:
                self._failure(self, live, error)
            return True
        self.processed_batches += 1
        self.processed_requests += len(live)
        if not self._claim(live, epoch):
            return False
        try:
            self._completion(self, live, prediction)
        except BaseException as error:
            # A buggy completion callback must not kill the worker
            # and strand every queued batch; deliver the error to
            # whatever futures the callback left unresolved
            # (deduplicated followers included).
            for request in live.requests:
                if not request.pending.done():
                    request.pending.set_exception(error)
                for follower in request.followers:
                    if not follower.pending.done():
                        follower.pending.set_exception(error)
        return True

    def _classify(self, batch: MicroBatch) -> BatchPrediction:
        """Score one micro-batch, preferring the zero-copy packed path.

        When every request carries its submit-time ``uint64`` words, the
        stacked words go straight to ``predict_batch_packed`` and the bSOM
        scores them against its cached bit-planes -- no re-packing, no
        re-validation.  Mixed or unpacked batches fall back to stacking the
        raw signatures; those were validated at ``submit`` time too, so the
        zeros-and-ones scan is skipped either way.

        ``self.classifier`` is read exactly once per batch: a hot-swap
        (:meth:`ShardGroup.swap_classifier`) rebinding it mid-queue takes
        effect at the next micro-batch boundary, never mid-kernel.

        Sampled requests get a ``kernel`` span (one clock read pair for the
        whole batch) annotated with the shard, model, batch size and the
        serving map's weights version -- the annotation that makes a trace
        spanning a hot-swap attributable to the map that actually scored
        it.  Their still-open ``batch`` span (shard-queue wait) is closed
        at the same instant the kernel starts.
        """
        if self._injector is not None:
            # kernel_hang sleeps (spec.hang_s) -- the wedged-worker fault
            # the supervisor's hang_timeout must catch; kernel_raise throws.
            self._injector.raise_if(KERNEL_HANG, shard=self.name, model=batch.model)
            self._injector.raise_if(KERNEL_RAISE, shard=self.name, model=batch.model)
        classifier = self.classifier
        traced = [r.trace for r in batch.requests if r.trace is not None]
        kernel_start = self._clock() if traced else 0.0
        rows = [request.packed for request in batch.requests]
        if rows and all(row is not None for row in rows):
            prediction = classifier.predict_batch_packed(np.vstack(rows))
        else:
            signatures = np.vstack([request.signature for request in batch.requests])
            prediction = classifier.predict_batch(signatures, validate=False)
        if traced:
            kernel_end = self._clock()
            som = classifier.som
            weights_version = getattr(som, "weights_version", None)
            backend = getattr(getattr(som, "backend", None), "name", None)
            for trace in traced:
                trace.end("batch", t=kernel_start)
                trace.span(
                    "kernel",
                    start=kernel_start,
                    end=kernel_end,
                    shard=self.name,
                    model=batch.model,
                    batch_size=len(batch),
                    weights_version=weights_version,
                    backend=backend,
                )
        return prediction


class ShardGroup:
    """The routed set of worker shards behind one registered model.

    Parameters
    ----------
    model:
        Model name (shards are named ``"<model>/<index>"``).
    classifier:
        Fitted classifier shared by all shards.  ``predict_batch`` is
        read-only over the weights, so replicas can share the object.
    completion, failure:
        Forwarded to every shard.
    n_shards:
        Number of worker threads.
    policy:
        ``"round_robin"`` or ``"least_loaded"``.
    queue_capacity:
        Per-shard queue bound.
    backend:
        Distance-backend selection applied to the classifier's SOM when it
        supports pluggable backends (name or
        :class:`~repro.core.backends.DistanceBackend`); ``None`` keeps the
        SOM's current backend.  Applied once here -- the shards share the
        classifier, so they automatically share the SOM's cached prepared
        operands as well.
    clock:
        Monotonic time source forwarded to every shard (trace timestamps).
    fault_injector:
        Forwarded to every shard (kernel/death injection sites).
    """

    def __init__(
        self,
        model: str,
        classifier: SomClassifier,
        completion: CompletionCallback,
        *,
        failure: Optional[FailureCallback] = None,
        n_shards: int = 2,
        policy: str = "round_robin",
        queue_capacity: int = 8,
        backend=None,
        clock: Callable[[], float] = time.monotonic,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        if backend is not None and hasattr(classifier.som, "set_backend"):
            classifier.som.set_backend(backend)
        if policy not in _ROUTING_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_ROUTING_POLICIES}, got {policy!r}"
            )
        self.model = model
        self.policy = policy
        self.classifier = classifier
        #: Optional (model, shard) -> bool gate the router consults before
        #: offering a batch to a shard; bound by the registry when the
        #: service runs with circuit breakers
        #: (:meth:`repro.serve.resilience.BreakerBoard.allow`).
        self.breaker_gate: Optional[BreakerGate] = None
        self.shards = [
            WorkerShard(
                f"{model}/{index}",
                classifier,
                completion,
                failure=failure,
                queue_capacity=queue_capacity,
                clock=clock,
                fault_injector=fault_injector,
            )
            for index in range(n_shards)
        ]
        self._rr_lock = threading.Lock()
        self._rr_next = 0

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def stop(self, timeout: float = 5.0) -> list[str]:
        """Stop every shard; returns the names of leaked (wedged) workers."""
        return [shard.name for shard in self.shards if not shard.stop(timeout)]

    # ------------------------------------------------------------------ #
    # Hot-swap and eviction support
    # ------------------------------------------------------------------ #
    def swap_classifier(self, classifier: SomClassifier) -> SomClassifier:
        """Rebind every shard to ``classifier``; return the previous one.

        Rebinding is a single attribute store per shard, and each worker
        reads its classifier once per batch, so the switch lands exactly at
        a micro-batch boundary: the in-flight batch finishes on the old
        map, everything still queued is scored by the new one, and no
        request is dropped or failed.
        """
        previous = self.classifier
        self.classifier = classifier
        for shard in self.shards:
            shard.classifier = classifier
        return previous

    def cancel_queued(self, error: BaseException) -> int:
        """Fail every queued batch across all shards (eviction path)."""
        return sum(shard.cancel_queued(error) for shard in self.shards)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _candidate_order(self) -> list[WorkerShard]:
        if self.policy == "least_loaded":
            return sorted(self.shards, key=lambda shard: shard.load)
        with self._rr_lock:
            start = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.shards)
        return [
            self.shards[(start + offset) % len(self.shards)]
            for offset in range(len(self.shards))
        ]

    def submit(self, batch: MicroBatch) -> WorkerShard:
        """Route a batch to a shard per the policy.

        Shards whose circuit breaker is open (or that the supervisor
        disabled) are skipped.  When every shard was gated off the group
        raises :class:`~repro.errors.CircuitOpenError`; when at least one
        shard was eligible but all eligible queues were full it raises
        :class:`~repro.errors.ServiceOverloadedError` (backpressure).
        """
        gate = self.breaker_gate
        gated = 0
        for shard in self._candidate_order():
            if shard.disabled:
                gated += 1
                continue
            if gate is not None and not gate(self.model, shard.name):
                gated += 1
                continue
            if shard.try_submit(batch):
                return shard
        if gated == len(self.shards):
            raise CircuitOpenError(
                self.model, open_shards=gated, total_shards=len(self.shards)
            )
        raise ServiceOverloadedError(
            f"all {len(self.shards)} shard queues of model {self.model!r}",
            pending=self.total_queue_depth,
            capacity=sum(shard._queue.maxsize for shard in self.shards),
        )

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    @property
    def total_queue_depth(self) -> int:
        return sum(shard.queue_depth for shard in self.shards)

    def queue_depths(self) -> dict[str, int]:
        return {shard.name: shard.queue_depth for shard in self.shards}
