"""Worker shards: thread-backed batch executors behind each model.

A shard owns a bounded queue of micro-batches and a worker thread that
classifies each batch in one :meth:`SomClassifier.predict_batch` call.  A
:class:`ShardGroup` fronts the N shards of one model and picks a shard per
batch using one of two routing policies:

* ``round_robin`` -- rotate through the shards, skipping full queues, and
* ``least_loaded`` -- send the batch to the shard with the smallest load
  (queued batches plus the one in flight).

When every shard's queue is full the group raises
:class:`~repro.errors.ServiceOverloadedError` -- the backpressure signal the
service surfaces to callers instead of buffering without bound.

Shards deliberately do not resolve request futures themselves: they hand
``(batch, BatchPrediction)`` to a completion callback supplied by the
service, which owns the cache and the metrics.  That keeps the shard loop
model-only and lets tests drive a shard without a full service around it.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Optional

from repro.core.classifier import BatchPrediction, SomClassifier
from repro.errors import ConfigurationError, ServiceOverloadedError
from repro.serve.batching import MicroBatch

import numpy as np

#: Signature of the completion callback shards invoke after each batch.
CompletionCallback = Callable[["WorkerShard", MicroBatch, BatchPrediction], None]

#: Signature of the failure callback invoked when classification raises.
FailureCallback = Callable[["WorkerShard", MicroBatch, BaseException], None]

_ROUTING_POLICIES = ("round_robin", "least_loaded")


class WorkerShard:
    """One worker thread + bounded batch queue for one model replica.

    Parameters
    ----------
    name:
        Unique shard name (``"<model>/<index>"`` in a group); keys the
        per-shard queue-depth telemetry.
    classifier:
        The fitted classifier replica this shard scores batches with.
    completion:
        Called with ``(shard, batch, prediction)`` after each batch; errors
        during classification are delivered to the batch's futures instead.
    failure:
        Called with ``(shard, batch, error)`` after classification raises
        (the futures have already received the error); the service uses it
        to release the batch's pending-budget slots so a failing model
        cannot permanently exhaust ``max_pending``.
    queue_capacity:
        Maximum queued batches before :meth:`try_submit` refuses.
    clock:
        Monotonic time source for trace timestamps (kernel spans), shared
        with the service's tracer; injectable for tests.
    """

    def __init__(
        self,
        name: str,
        classifier: SomClassifier,
        completion: CompletionCallback,
        *,
        failure: Optional[FailureCallback] = None,
        queue_capacity: int = 8,
        clock: Callable[[], float] = time.monotonic,
    ):
        if queue_capacity <= 0:
            raise ConfigurationError(
                f"queue_capacity must be positive, got {queue_capacity}"
            )
        self.name = name
        self.classifier = classifier
        self._completion = completion
        self._failure = failure
        self._clock = clock
        self._queue: "queue.Queue[Optional[MicroBatch]]" = queue.Queue(
            maxsize=int(queue_capacity)
        )
        self._thread: Optional[threading.Thread] = None
        self._in_flight = 0
        self._lock = threading.Lock()
        self.processed_batches = 0
        self.processed_requests = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name=f"shard-{self.name}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Drain the queue, then stop the worker thread."""
        if self._thread is None:
            return
        self._queue.put(None)  # sentinel; everything queued before it drains
        self._thread.join(timeout)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def try_submit(self, batch: MicroBatch) -> bool:
        """Queue a batch; ``False`` when the queue is full (backpressure)."""
        try:
            self._queue.put_nowait(batch)
            return True
        except queue.Full:
            return False

    def cancel_queued(self, error: BaseException) -> int:
        """Fail every queued (not yet running) batch with ``error``.

        Used by model eviction: queued futures get a prompt, catchable
        error instead of hanging until their timeout.  Batches the worker
        already pulled are unaffected (they complete normally); stop
        sentinels found in the queue are preserved.  Returns the number of
        requests failed.
        """
        drained: list[Optional[MicroBatch]] = []
        while True:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                break
        cancelled = 0
        for batch in drained:
            if batch is None:
                self._queue.put(None)
                continue
            for request in batch.requests:
                request.pending.set_exception(error)
            if self._failure is not None:
                self._failure(self, batch, error)
            cancelled += len(batch)
        return cancelled

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    @property
    def load(self) -> int:
        """Queued batches plus the batch currently being classified."""
        with self._lock:
            return self._queue.qsize() + self._in_flight

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            batch = self._queue.get()
            if batch is None:
                return
            with self._lock:
                self._in_flight = 1
            try:
                prediction = self._classify(batch)
            except BaseException as error:  # deliver, never kill the worker
                for request in batch.requests:
                    request.pending.set_exception(error)
                if self._failure is not None:
                    self._failure(self, batch, error)
            else:
                self.processed_batches += 1
                self.processed_requests += len(batch)
                try:
                    self._completion(self, batch, prediction)
                except BaseException as error:
                    # A buggy completion callback must not kill the worker
                    # and strand every queued batch; deliver the error to
                    # whatever futures the callback left unresolved
                    # (deduplicated followers included).
                    for request in batch.requests:
                        if not request.pending.done():
                            request.pending.set_exception(error)
                        for follower in request.followers:
                            if not follower.pending.done():
                                follower.pending.set_exception(error)
            finally:
                with self._lock:
                    self._in_flight = 0

    def _classify(self, batch: MicroBatch) -> BatchPrediction:
        """Score one micro-batch, preferring the zero-copy packed path.

        When every request carries its submit-time ``uint64`` words, the
        stacked words go straight to ``predict_batch_packed`` and the bSOM
        scores them against its cached bit-planes -- no re-packing, no
        re-validation.  Mixed or unpacked batches fall back to stacking the
        raw signatures; those were validated at ``submit`` time too, so the
        zeros-and-ones scan is skipped either way.

        ``self.classifier`` is read exactly once per batch: a hot-swap
        (:meth:`ShardGroup.swap_classifier`) rebinding it mid-queue takes
        effect at the next micro-batch boundary, never mid-kernel.

        Sampled requests get a ``kernel`` span (one clock read pair for the
        whole batch) annotated with the shard, model, batch size and the
        serving map's weights version -- the annotation that makes a trace
        spanning a hot-swap attributable to the map that actually scored
        it.  Their still-open ``batch`` span (shard-queue wait) is closed
        at the same instant the kernel starts.
        """
        classifier = self.classifier
        traced = [r.trace for r in batch.requests if r.trace is not None]
        kernel_start = self._clock() if traced else 0.0
        rows = [request.packed for request in batch.requests]
        if rows and all(row is not None for row in rows):
            prediction = classifier.predict_batch_packed(np.vstack(rows))
        else:
            signatures = np.vstack([request.signature for request in batch.requests])
            prediction = classifier.predict_batch(signatures, validate=False)
        if traced:
            kernel_end = self._clock()
            som = classifier.som
            weights_version = getattr(som, "weights_version", None)
            backend = getattr(getattr(som, "backend", None), "name", None)
            for trace in traced:
                trace.end("batch", t=kernel_start)
                trace.span(
                    "kernel",
                    start=kernel_start,
                    end=kernel_end,
                    shard=self.name,
                    model=batch.model,
                    batch_size=len(batch),
                    weights_version=weights_version,
                    backend=backend,
                )
        return prediction


class ShardGroup:
    """The routed set of worker shards behind one registered model.

    Parameters
    ----------
    model:
        Model name (shards are named ``"<model>/<index>"``).
    classifier:
        Fitted classifier shared by all shards.  ``predict_batch`` is
        read-only over the weights, so replicas can share the object.
    completion, failure:
        Forwarded to every shard.
    n_shards:
        Number of worker threads.
    policy:
        ``"round_robin"`` or ``"least_loaded"``.
    queue_capacity:
        Per-shard queue bound.
    backend:
        Distance-backend selection applied to the classifier's SOM when it
        supports pluggable backends (name or
        :class:`~repro.core.backends.DistanceBackend`); ``None`` keeps the
        SOM's current backend.  Applied once here -- the shards share the
        classifier, so they automatically share the SOM's cached prepared
        operands as well.
    clock:
        Monotonic time source forwarded to every shard (trace timestamps).
    """

    def __init__(
        self,
        model: str,
        classifier: SomClassifier,
        completion: CompletionCallback,
        *,
        failure: Optional[FailureCallback] = None,
        n_shards: int = 2,
        policy: str = "round_robin",
        queue_capacity: int = 8,
        backend=None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if n_shards <= 0:
            raise ConfigurationError(f"n_shards must be positive, got {n_shards}")
        if backend is not None and hasattr(classifier.som, "set_backend"):
            classifier.som.set_backend(backend)
        if policy not in _ROUTING_POLICIES:
            raise ConfigurationError(
                f"policy must be one of {_ROUTING_POLICIES}, got {policy!r}"
            )
        self.model = model
        self.policy = policy
        self.classifier = classifier
        self.shards = [
            WorkerShard(
                f"{model}/{index}",
                classifier,
                completion,
                failure=failure,
                queue_capacity=queue_capacity,
                clock=clock,
            )
            for index in range(n_shards)
        ]
        self._rr_lock = threading.Lock()
        self._rr_next = 0

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def stop(self, timeout: float = 5.0) -> None:
        for shard in self.shards:
            shard.stop(timeout)

    # ------------------------------------------------------------------ #
    # Hot-swap and eviction support
    # ------------------------------------------------------------------ #
    def swap_classifier(self, classifier: SomClassifier) -> SomClassifier:
        """Rebind every shard to ``classifier``; return the previous one.

        Rebinding is a single attribute store per shard, and each worker
        reads its classifier once per batch, so the switch lands exactly at
        a micro-batch boundary: the in-flight batch finishes on the old
        map, everything still queued is scored by the new one, and no
        request is dropped or failed.
        """
        previous = self.classifier
        self.classifier = classifier
        for shard in self.shards:
            shard.classifier = classifier
        return previous

    def cancel_queued(self, error: BaseException) -> int:
        """Fail every queued batch across all shards (eviction path)."""
        return sum(shard.cancel_queued(error) for shard in self.shards)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _candidate_order(self) -> list[WorkerShard]:
        if self.policy == "least_loaded":
            return sorted(self.shards, key=lambda shard: shard.load)
        with self._rr_lock:
            start = self._rr_next
            self._rr_next = (self._rr_next + 1) % len(self.shards)
        return [
            self.shards[(start + offset) % len(self.shards)]
            for offset in range(len(self.shards))
        ]

    def submit(self, batch: MicroBatch) -> WorkerShard:
        """Route a batch to a shard per the policy; raise when all are full."""
        for shard in self._candidate_order():
            if shard.try_submit(batch):
                return shard
        raise ServiceOverloadedError(
            f"all {len(self.shards)} shard queues of model {self.model!r}",
            pending=self.total_queue_depth,
            capacity=sum(shard._queue.maxsize for shard in self.shards),
        )

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    @property
    def total_queue_depth(self) -> int:
        return sum(shard.queue_depth for shard in self.shards)

    def queue_depths(self) -> dict[str, int]:
        return {shard.name: shard.queue_depth for shard in self.shards}
