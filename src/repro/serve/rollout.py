"""Guarded model rollouts: shadow evaluation, canary routing, rollback.

The paper's system retrains itself from on-line labelling while serving
live traffic, which makes the *model-update path* the biggest unguarded
failure source left after the request path was hardened: a bad retrain or
a regressed candidate swapped straight into production has no safety net.
This module turns every model update into a guarded, observable,
reversible deployment:

* **Shadow evaluation** -- :class:`ShadowEvaluator` mirrors live requests
  to a candidate classifier on a dedicated thread, out of the request
  path: primary responses are never altered or delayed, and the candidate
  accumulates agreement / rejection / latency statistics
  (:class:`ShadowStats`) against what the active version actually served.
* **Canary routing** -- once the candidate looks healthy, it is registered
  as ``name@vN`` beside the active version and
  :meth:`~repro.serve.registry.ModelRegistry.set_route` gives it a seeded,
  deterministic slice of live traffic while shadow accounting continues on
  the remaining primary share.
* **Automatic promotion / demotion** -- a :class:`RolloutPolicy` decides
  after every mirrored batch: promote when agreement clears the threshold
  over a minimum sample count, demote on regression (or on an inconclusive
  candidate that exhausts ``max_samples`` -- fail closed).  Promotion
  rides the registry's zero-drop ``swap``; demotion drains the canary's
  queues before evicting it, so every in-flight future stays terminal.
* **Rollback ring** -- the last ``ring_size`` swapped-out snapshots per
  model are retained; :meth:`RolloutManager.rollback` (manual) or an
  opening circuit breaker (``rollback_on_breaker``) swaps the previous
  version back in one zero-drop transition.

Every transition emits events (``rollout_begin`` / ``rollout_canary`` /
``rollout_promoted`` / ``rollout_demoted`` / ``rollout_rolled_back`` /
``rollout_promote_failed``) and moves the ``serve_rollout_stage{model}``
gauge; shadow traffic is counted under ``serve_shadow_*`` metrics.  The
chaos gate drives the promotion path's ``promote_failure`` injection site
to prove a failed promotion leaves the active version serving untouched.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.serialization import snapshot_model
from repro.core.snapshot import ModelSnapshot
from repro.errors import (
    ConfigurationError,
    DataError,
    InjectedFaultError,
    UnknownModelError,
)
from repro.serve.resilience import PROMOTE_FAILURE

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.service import StreamingInferenceService

#: Gauge encoding of rollout stages (``serve_rollout_stage{model}``).
ROLLOUT_STAGE_CODES = {
    "idle": 0,
    "shadow": 1,
    "canary": 2,
    "promoted": 3,
    "demoted": 4,
    "rolled_back": 5,
}


@dataclass(frozen=True)
class RolloutPolicy:
    """When a shadowed candidate is promoted, demoted, or kept waiting.

    Attributes
    ----------
    min_samples:
        Mirrored requests the candidate must score before any decision is
        taken -- no promotion (or demotion) off a handful of frames.
    promote_agreement:
        Minimum fraction of mirrored requests on which the candidate's
        outcome (label *and* rejection status) matches what the active
        version served.
    demote_agreement:
        Agreement below this is a regression: the candidate is demoted as
        soon as ``min_samples`` have been scored.
    max_shadow_latency_ms:
        Optional cap on the candidate's mean per-signature scoring time;
        a candidate that clears agreement but is too slow is held, not
        promoted.
    max_samples:
        Optional verdict deadline: a candidate still inconclusive (between
        the two agreement thresholds) after this many samples is demoted
        -- an update that cannot prove itself fails closed.
    """

    min_samples: int = 200
    promote_agreement: float = 0.98
    demote_agreement: float = 0.90
    max_shadow_latency_ms: Optional[float] = None
    max_samples: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if not 0.0 < self.promote_agreement <= 1.0:
            raise ConfigurationError(
                f"promote_agreement must lie in (0, 1], got {self.promote_agreement}"
            )
        if not 0.0 <= self.demote_agreement <= self.promote_agreement:
            raise ConfigurationError(
                "demote_agreement must lie in [0, promote_agreement], got "
                f"{self.demote_agreement}"
            )
        if self.max_shadow_latency_ms is not None and self.max_shadow_latency_ms <= 0:
            raise ConfigurationError(
                f"max_shadow_latency_ms must be positive or None, "
                f"got {self.max_shadow_latency_ms}"
            )
        if self.max_samples is not None and self.max_samples < self.min_samples:
            raise ConfigurationError(
                f"max_samples ({self.max_samples}) must be >= min_samples "
                f"({self.min_samples})"
            )

    def decide(self, stats: "ShadowStats") -> str:
        """``"promote"``, ``"demote"`` or ``"hold"`` for the given stats."""
        if stats.samples < self.min_samples:
            return "hold"
        agreement = stats.agreement
        if agreement < self.demote_agreement:
            return "demote"
        if agreement >= self.promote_agreement and (
            self.max_shadow_latency_ms is None
            or stats.shadow_mean_latency_ms <= self.max_shadow_latency_ms
        ):
            return "promote"
        if self.max_samples is not None and stats.samples >= self.max_samples:
            return "demote"
        return "hold"


@dataclass(frozen=True)
class ShadowStats:
    """Immutable snapshot of a candidate's mirrored-traffic scorecard."""

    samples: int = 0
    agreements: int = 0
    disagreements: int = 0
    primary_rejections: int = 0
    shadow_rejections: int = 0
    shadow_seconds: float = 0.0
    primary_latency_seconds: float = 0.0
    dropped: int = 0

    @property
    def agreement(self) -> float:
        """Fraction of mirrored requests with matching outcomes (1.0 when
        nothing has been mirrored yet, so a fresh candidate is not demoted
        for lack of data)."""
        return self.agreements / self.samples if self.samples else 1.0

    @property
    def shadow_mean_latency_ms(self) -> float:
        """Mean candidate scoring time per mirrored signature."""
        return (self.shadow_seconds / self.samples) * 1e3 if self.samples else 0.0

    @property
    def primary_mean_latency_ms(self) -> float:
        """Mean end-to-end latency the active version actually served."""
        return (
            (self.primary_latency_seconds / self.samples) * 1e3
            if self.samples
            else 0.0
        )


@dataclass(frozen=True)
class RolloutConfig:
    """Knobs of the guarded-rollout machinery.

    Attributes
    ----------
    policy:
        The promotion/demotion thresholds (:class:`RolloutPolicy`).
    canary_fraction:
        Share of live traffic routed to the candidate once it clears the
        shadow phase (0 skips the canary stage and promotes directly).
        Capped at 0.5: the active version keeps the majority until the
        candidate is promoted.
    split_seed:
        Seed of the deterministic canary traffic split
        (:meth:`~repro.serve.registry.ModelRegistry.set_route`).
    ring_size:
        Swapped-out snapshots retained per model for rollback.
    auto:
        Apply the policy's verdicts automatically after every mirrored
        batch; ``False`` only accumulates stats (manual
        :meth:`RolloutManager.promote` / :meth:`~RolloutManager.demote`).
    rollback_on_breaker:
        Arm one automatic rollback per promotion: if a circuit breaker of
        the promoted model opens while armed, the previous snapshot is
        swapped back in.
    shadow_queue_capacity:
        Bounded mirror queue (batches, not requests); overflow is counted
        as ``dropped``, never blocking the request path.
    drain_timeout_s:
        How long demotion waits for the canary's queued batches to finish
        before evicting its shard group.
    """

    policy: RolloutPolicy = field(default_factory=RolloutPolicy)
    canary_fraction: float = 0.0
    split_seed: int = 0
    ring_size: int = 4
    auto: bool = True
    rollback_on_breaker: bool = True
    shadow_queue_capacity: int = 256
    drain_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.canary_fraction <= 0.5:
            raise ConfigurationError(
                f"canary_fraction must lie in [0, 0.5], got {self.canary_fraction}"
            )
        if self.ring_size < 1:
            raise ConfigurationError(
                f"ring_size must be >= 1, got {self.ring_size}"
            )
        if self.shadow_queue_capacity < 1:
            raise ConfigurationError(
                f"shadow_queue_capacity must be >= 1, got {self.shadow_queue_capacity}"
            )
        if self.drain_timeout_s <= 0:
            raise ConfigurationError(
                f"drain_timeout_s must be positive, got {self.drain_timeout_s}"
            )


class ShadowEvaluator:
    """Scores mirrored batches against the candidate, out of band.

    One daemon thread per rollout pulls ``(packed rows, primary outcomes)``
    items off a bounded queue and runs the candidate's packed batch kernel
    on them.  The request path only ever pays a non-blocking ``put``; when
    the queue is full the batch is dropped and counted, never waited for.
    After every scored batch ``on_scored`` (the manager's policy hook) is
    invoked with fresh stats.
    """

    def __init__(
        self,
        name: str,
        candidate,
        *,
        capacity: int,
        on_scored,
    ):
        self.name = name
        self.candidate = candidate
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._on_scored = on_scored
        self._lock = threading.Lock()
        self._samples = 0
        self._agreements = 0
        self._disagreements = 0
        self._primary_rejections = 0
        self._shadow_rejections = 0
        self._shadow_seconds = 0.0
        self._primary_latency_seconds = 0.0
        self._dropped = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"shadow-{name}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the worker; safe to call from the worker thread itself
        (a policy transition runs *in* the worker, which then must not
        try to join itself)."""
        self._stop.set()
        self._queue.put(None)  # wake the worker; None is the sentinel
        if threading.current_thread() is not self._thread:
            self._thread.join(timeout)

    @property
    def running(self) -> bool:
        return self._thread.is_alive()

    def mirror(self, packed_rows, labels, rejected, latency_s: float) -> bool:
        """Enqueue one primary batch's outcomes for shadow scoring.

        Non-blocking: returns ``False`` (and counts the drop) when the
        queue is full, so a slow candidate can never backpressure the
        live request path.
        """
        if self._stop.is_set():
            return False
        try:
            self._queue.put_nowait((packed_rows, labels, rejected, latency_s))
            return True
        except queue.Full:
            with self._lock:
                self._dropped += len(labels)
            return False

    def stats(self) -> ShadowStats:
        with self._lock:
            return ShadowStats(
                samples=self._samples,
                agreements=self._agreements,
                disagreements=self._disagreements,
                primary_rejections=self._primary_rejections,
                shadow_rejections=self._shadow_rejections,
                shadow_seconds=self._shadow_seconds,
                primary_latency_seconds=self._primary_latency_seconds,
                dropped=self._dropped,
            )

    def reset_stats(self) -> None:
        """Zero the scorecard (entering the canary phase starts fresh)."""
        with self._lock:
            self._samples = 0
            self._agreements = 0
            self._disagreements = 0
            self._primary_rejections = 0
            self._shadow_rejections = 0
            self._shadow_seconds = 0.0
            self._primary_latency_seconds = 0.0

    def drain(self, timeout_s: float = 5.0) -> None:
        """Block until every mirrored batch queued so far is scored."""
        deadline = time.monotonic() + timeout_s
        while not self._queue.empty() and time.monotonic() < deadline:
            time.sleep(0.002)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None or self._stop.is_set():
                return
            packed_rows, labels, rejected, latency_s = item
            try:
                self._score(packed_rows, labels, rejected, latency_s)
            except Exception:
                # A candidate that cannot even score its mirror traffic
                # counts every mirrored request as a disagreement -- the
                # policy will demote it; it must never kill the worker.
                with self._lock:
                    self._samples += len(labels)
                    self._disagreements += len(labels)
            if self._on_scored is not None:
                self._on_scored(self.name)

    def _score(self, packed_rows, labels, rejected, latency_s: float) -> None:
        words = np.vstack(packed_rows)
        started = time.perf_counter()
        prediction = self.candidate.predict_batch_packed(words)
        elapsed = time.perf_counter() - started
        primary_labels = np.asarray(labels)
        primary_rejected = np.asarray(rejected, dtype=bool)
        shadow_rejected = np.asarray(prediction.rejected, dtype=bool)
        # Outcome agreement: same rejection verdict, and the same label
        # whenever both sides accepted the signature.
        agree = (primary_rejected == shadow_rejected) & (
            primary_rejected | (prediction.labels == primary_labels)
        )
        with self._lock:
            self._samples += len(primary_labels)
            self._agreements += int(np.count_nonzero(agree))
            self._disagreements += int(np.count_nonzero(~agree))
            self._primary_rejections += int(np.count_nonzero(primary_rejected))
            self._shadow_rejections += int(np.count_nonzero(shadow_rejected))
            self._shadow_seconds += elapsed
            self._primary_latency_seconds += latency_s


@dataclass
class RolloutStatus:
    """One rollout's externally visible state."""

    model: str
    stage: str
    version: Optional[str]
    stats: ShadowStats
    candidate_weights_version: Optional[int]


class _Rollout:
    """Internal per-model rollout state (owned by the manager)."""

    def __init__(
        self,
        name: str,
        candidate: ModelSnapshot,
        version: str,
        evaluator: ShadowEvaluator,
    ):
        self.name = name
        self.candidate = candidate
        self.version = version
        self.evaluator = evaluator
        self.stage = "shadow"
        self.routed = False  # candidate registered + route set (canary)
        self.reported_disagreements = 0  # high-water mark for the counter
        self.lock = threading.Lock()  # serialises stage transitions


class RolloutManager:
    """Drives guarded rollouts for a :class:`StreamingInferenceService`.

    One manager per service (``service.enable_rollouts()``); one active
    rollout per logical model name.  All transitions funnel through this
    class so the state machine -- shadow -> canary -> promoted / demoted,
    plus breaker- or operator-triggered rollback -- is serialised per
    model and every step lands in the service's metrics and event log.
    """

    def __init__(
        self,
        service: "StreamingInferenceService",
        config: Optional[RolloutConfig] = None,
    ):
        self.service = service
        self.config = config or RolloutConfig()
        self._active: dict[str, _Rollout] = {}
        self._rings: dict[str, deque] = {}
        self._armed: dict[str, bool] = {}
        self._versions: dict[str, int] = {}
        self._lock = threading.Lock()
        registry = service.obs.registry
        self._promotions = registry.counter(
            "serve_rollout_promotions_total",
            help="Candidates promoted to active",
        )
        self._demotions = registry.counter(
            "serve_rollout_demotions_total",
            help="Candidates demoted (regression, inconclusive, or manual)",
        )
        self._rollbacks = registry.counter(
            "serve_rollout_rollbacks_total",
            help="Promoted models rolled back from the ring",
        )
        self._promote_failures = registry.counter(
            "serve_rollout_promote_failures_total",
            help="Promotions that failed mid-transition and were rolled off",
        )

    # ------------------------------------------------------------------ #
    # Telemetry helpers
    # ------------------------------------------------------------------ #
    def _stage_gauge(self, model: str, stage: str) -> None:
        self.service.obs.registry.gauge(
            "serve_rollout_stage",
            labels={"model": model},
            help="Rollout stage (0 idle, 1 shadow, 2 canary, 3 promoted, "
            "4 demoted, 5 rolled-back)",
        ).set(ROLLOUT_STAGE_CODES[stage])

    def _shadow_counter(self, name: str, model: str, help_text: str):
        return self.service.obs.registry.counter(
            name, labels={"model": model}, help=help_text
        )

    def _emit(self, kind: str, **fields) -> None:
        self.service.obs.events.emit(kind, **fields)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def status(self, model: str) -> Optional[RolloutStatus]:
        """The active rollout of ``model``, or ``None``."""
        rollout = self._active.get(model)
        if rollout is None:
            return None
        return RolloutStatus(
            model=model,
            stage=rollout.stage,
            version=rollout.version if rollout.routed else None,
            stats=rollout.evaluator.stats(),
            candidate_weights_version=rollout.candidate.weights_version,
        )

    def stats(self, model: str) -> Optional[ShadowStats]:
        rollout = self._active.get(model)
        return rollout.evaluator.stats() if rollout is not None else None

    def ring(self, model: str) -> tuple[ModelSnapshot, ...]:
        """The rollback ring of ``model``, newest last."""
        with self._lock:
            return tuple(self._rings.get(model, ()))

    # ------------------------------------------------------------------ #
    # The state machine
    # ------------------------------------------------------------------ #
    def begin(self, model: str, candidate) -> RolloutStatus:
        """Start shadow-evaluating ``candidate`` against active ``model``.

        ``candidate`` is a fitted classifier or
        :class:`~repro.core.snapshot.ModelSnapshot`.  It must consume the
        same signature width as the active version (mirrored requests are
        already packed for that width).  Only one rollout per model can be
        active at a time.
        """
        snapshot = snapshot_model(candidate)
        if not snapshot.is_fitted:
            raise DataError(
                f"rollout candidate for {model!r} must be a fitted classifier"
            )
        active = self.service.registry.classifier(model)  # UnknownModelError
        if snapshot.n_bits != active.som.n_bits:
            raise ConfigurationError(
                f"candidate for {model!r} expects {snapshot.n_bits}-bit "
                f"signatures but live traffic carries {active.som.n_bits} bits"
            )
        with self._lock:
            if model in self._active:
                raise ConfigurationError(
                    f"a rollout for {model!r} is already in progress "
                    f"(stage {self._active[model].stage!r})"
                )
            n = self._versions.get(model, 0) + 1
            self._versions[model] = n
            version = f"{model}@v{n}"
            evaluator = ShadowEvaluator(
                model,
                snapshot.to_classifier(),
                capacity=self.config.shadow_queue_capacity,
                on_scored=self._on_scored,
            )
            rollout = _Rollout(model, snapshot, version, evaluator)
            self._active[model] = rollout
        evaluator.start()
        self._stage_gauge(model, "shadow")
        self._emit(
            "rollout_begin",
            model=model,
            version=version,
            candidate_weights_version=snapshot.weights_version,
        )
        return self.status(model)

    def mirror_batch(self, batch, responses) -> None:
        """Service completion hook: feed one resolved batch to the shadow.

        Called with the primary's already-resolved responses, *after* every
        future has its answer -- mirroring can neither delay nor alter what
        callers see.  Batches of the canary version itself (``name@vN``)
        do not hit this path: they are keyed by the version name, which is
        never a rollout key.
        """
        rollout = self._active.get(batch.model)
        if rollout is None or rollout.stage not in ("shadow", "canary"):
            return
        packed = [request.packed for request in batch.requests]
        labels = [response.label for response in responses]
        rejected = [response.rejected for response in responses]
        latency = sum(response.latency_s for response in responses)
        mirrored = rollout.evaluator.mirror(packed, labels, rejected, latency)
        self._shadow_counter(
            "serve_shadow_requests_total",
            batch.model,
            "Live requests mirrored to a shadow candidate",
        ).inc(len(labels))
        if not mirrored:
            self._shadow_counter(
                "serve_shadow_dropped_total",
                batch.model,
                "Mirrored requests dropped on shadow-queue overflow",
            ).inc(len(labels))

    def _on_scored(self, model: str) -> None:
        """Evaluator hook (runs on the shadow thread): metrics + policy."""
        rollout = self._active.get(model)
        if rollout is None:
            return
        stats = rollout.evaluator.stats()
        # Counters only move forward: publish the delta since last report.
        delta = stats.disagreements - rollout.reported_disagreements
        if delta > 0:
            rollout.reported_disagreements = stats.disagreements
            self._shadow_counter(
                "serve_shadow_disagreements_total",
                model,
                "Mirrored requests where the candidate disagreed with the "
                "active version",
            ).inc(delta)
        if not self.config.auto:
            return
        decision = self.config.policy.decide(stats)
        if decision == "hold":
            return
        if decision == "demote":
            self.demote(model, reason="regression")
            return
        # decision == "promote"
        if rollout.stage == "shadow" and self.config.canary_fraction > 0:
            self._enter_canary(rollout)
        else:
            self.promote(model)

    def _enter_canary(self, rollout: _Rollout) -> None:
        """Shadow -> canary: register ``name@vN`` and split live traffic."""
        with rollout.lock:
            if rollout.stage != "shadow":
                return
            registry = self.service.registry
            registry.register(rollout.version, rollout.candidate)
            fraction = self.config.canary_fraction
            registry.set_route(
                rollout.name,
                {rollout.name: 1.0 - fraction, rollout.version: fraction},
                seed=self.config.split_seed,
            )
            rollout.routed = True
            rollout.stage = "canary"
            # The canary verdict is earned on canary-phase traffic, not
            # inherited from the shadow phase that admitted it.
            rollout.evaluator.reset_stats()
            rollout.reported_disagreements = 0
        self._stage_gauge(rollout.name, "canary")
        self._emit(
            "rollout_canary",
            model=rollout.name,
            version=rollout.version,
            fraction=fraction,
        )

    def promote(self, model: str) -> bool:
        """Swap the candidate in as the active version (zero-drop).

        Returns ``True`` on success.  A failure mid-promotion (validation,
        operand preparation, or the injected ``promote_failure`` site)
        leaves the active version serving untouched and demotes the
        candidate -- the transition fails closed, never half-applied.
        """
        rollout = self._active.get(model)
        if rollout is None:
            raise UnknownModelError(model, tuple(self._active))
        with rollout.lock:
            if rollout.stage not in ("shadow", "canary"):
                return False
            injector = self.service.config.fault_injector
            try:
                if injector is not None:
                    injector.raise_if(PROMOTE_FAILURE, model=model)
                previous = self.service.swap_model(model, rollout.candidate)
            except Exception as error:
                self._promote_failures.inc()
                self._emit(
                    "rollout_promote_failed",
                    model=model,
                    version=rollout.version,
                    error=type(error).__name__,
                )
                self._teardown(rollout, stage="demoted", reason="promote_failed")
                if not isinstance(error, InjectedFaultError):
                    raise
                return False
            with self._lock:
                ring = self._rings.setdefault(
                    model, deque(maxlen=self.config.ring_size)
                )
                ring.append(snapshot_model(previous))
                self._armed[model] = self.config.rollback_on_breaker
            stats = rollout.evaluator.stats()
            self._teardown(rollout, stage="promoted", reason=None, stats=stats)
        self._promotions.inc()
        self._emit(
            "rollout_promoted",
            model=model,
            version=rollout.version,
            samples=stats.samples,
            agreement=round(stats.agreement, 4),
        )
        return True

    def demote(self, model: str, *, reason: str = "manual") -> bool:
        """Retire the candidate; the active version keeps serving.

        During a canary, the route is cleared first and the canary's
        queued batches are drained to completion before its shard group is
        evicted -- demotion mid-load leaves every already-admitted future
        terminal with a real classification.
        """
        rollout = self._active.get(model)
        if rollout is None:
            return False
        with rollout.lock:
            if rollout.stage not in ("shadow", "canary"):
                return False
            stats = rollout.evaluator.stats()
            self._teardown(rollout, stage="demoted", reason=reason, stats=stats)
        self._demotions.inc()
        self._emit(
            "rollout_demoted",
            model=model,
            version=rollout.version,
            reason=reason,
            samples=stats.samples,
            agreement=round(stats.agreement, 4),
        )
        return True

    def _teardown(
        self,
        rollout: _Rollout,
        *,
        stage: str,
        reason: Optional[str],
        stats: Optional[ShadowStats] = None,
    ) -> None:
        """Common tail of promote/demote (caller holds ``rollout.lock``)."""
        registry = self.service.registry
        if rollout.routed:
            registry.clear_route(rollout.name)
            self._drain_version(rollout.version)
            try:
                self.service.evict_model(rollout.version)
            except UnknownModelError:  # pragma: no cover - already gone
                pass
            rollout.routed = False
        rollout.stage = stage
        rollout.evaluator.stop()
        self._active.pop(rollout.name, None)
        self._stage_gauge(rollout.name, stage)

    def _drain_version(self, version: str) -> None:
        """Wait for the canary's queued work to finish before eviction.

        The route is already cleared, so no new request can resolve to the
        version; what remains is whatever sits in its scheduler lane or
        shard queues.  The deadline dispatcher cuts the lane within
        ``max_delay_ms``, so polling until both are empty (bounded by
        ``drain_timeout_s``) guarantees eviction fails nothing that was
        already admitted.
        """
        service = self.service
        deadline = time.monotonic() + self.config.drain_timeout_s
        while time.monotonic() < deadline:
            try:
                group = service.registry.group(version)
            except UnknownModelError:
                return
            if service.scheduler.pending_count(version) == 0 and all(
                shard.load == 0 for shard in group.shards
            ):
                return
            time.sleep(0.002)

    # ------------------------------------------------------------------ #
    # Rollback
    # ------------------------------------------------------------------ #
    def rollback(self, model: str, *, reason: str = "manual") -> bool:
        """Swap the newest ring snapshot back in (zero-drop); ``True`` on
        success, ``False`` when the ring is empty."""
        with self._lock:
            ring = self._rings.get(model)
            if not ring:
                return False
            snapshot = ring.pop()
            self._armed[model] = False
        self.service.swap_model(model, snapshot)
        self._rollbacks.inc()
        self._stage_gauge(model, "rolled_back")
        self._emit(
            "rollout_rolled_back",
            model=model,
            reason=reason,
            restored_weights_version=snapshot.weights_version,
        )
        return True

    def on_breaker_open(self, model: str, shard: str) -> None:
        """Breaker-board hook: roll a freshly promoted model back.

        Armed once per promotion (``rollback_on_breaker``); the swap runs
        on a short-lived thread so the breaker's completion path is never
        blocked behind a model transition.
        """
        with self._lock:
            if not self._armed.get(model):
                return
            self._armed[model] = False
        threading.Thread(
            target=lambda: self.rollback(model, reason=f"breaker_open:{shard}"),
            name=f"rollback-{model}",
            daemon=True,
        ).start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Demote every in-flight rollout and stop the shadow workers."""
        for model in list(self._active):
            self.demote(model, reason="service_stop")
