"""Resilience primitives for the serve stack.

A surveillance deployment is always-on: cameras never stop, so the serving
system has to survive misbehaving shards, hung kernels and mid-swap
failures without dropping or hanging requests.  This module holds the four
mechanisms the :class:`~repro.serve.service.StreamingInferenceService`
threads through its stack, plus the deterministic fault injector CI uses
to prove they work (``scripts/check_resilience.py``):

* :class:`FaultInjector` -- seed-driven, named injection sites (kernel
  raise, kernel hang, shard-thread death, swap failure, cache codec
  error).  Off unless explicitly armed; the same seed replays the same
  fault pattern, so a CI failure reproduces locally.
* :class:`RetryPolicy` -- jittered exponential backoff for transient
  :class:`~repro.errors.ServiceOverloadedError` refusals at submit time.
  Deterministic given its seed, budget-capped by ``max_attempts`` and by
  the request's own deadline.
* :class:`CircuitBreaker` / :class:`BreakerBoard` -- per-(model, shard)
  breakers that open after N consecutive batch failures, let one probe
  through per reset-timeout once half-open, and close again on success.
  The shard router skips open breakers; when every shard of a model is
  open the service degrades to stale cache answers (``stale=True``).
* :class:`ShardSupervisor` -- a watchdog thread that detects dead or
  wedged worker shards via per-shard heartbeats, fails the abandoned
  in-flight batch (terminal futures, never hangs), restarts the worker
  under a bounded restart budget, and leaves the shard's queued batches in
  place for the replacement worker to drain.

Everything reports through the :mod:`repro.obs` layer: breaker-state
gauges (``serve_breaker_state{model,shard}``), ``serve_retries_total``,
``serve_deadline_exceeded_total``, ``serve_shard_restarts_total`` and
``shard_restart`` / ``breaker_open`` / ``breaker_close`` events.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from repro.core.serialization import SNAPSHOT_CORRUPT_SITE
from repro.errors import ConfigurationError, InjectedFaultError, ShardFailedError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.obs.events import EventLog
    from repro.obs.metrics import MetricRegistry
    from repro.serve.registry import ModelRegistry

# --------------------------------------------------------------------- #
# Fault injection
# --------------------------------------------------------------------- #

#: Named injection sites wired into the serve stack.  Arming a spec for a
#: site makes the corresponding layer misbehave deterministically:
KERNEL_RAISE = "kernel_raise"  # shard kernel raises before scoring
KERNEL_HANG = "kernel_hang"  # shard kernel sleeps `hang_s` (wedged worker)
SHARD_DEATH = "shard_death"  # worker thread dies with a batch in hand
SWAP_FAILURE = "swap_failure"  # ModelRegistry.swap raises before the flip
CACHE_CODEC = "cache_codec"  # signature-cache get/put raises
PROMOTE_FAILURE = "promote_failure"  # rollout promotion raises mid-transition
# Archive loads fail closed as corrupt; the site name itself is owned by the
# core layer (repro.core.serialization) so load_snapshot never imports serve.
SNAPSHOT_CORRUPT = SNAPSHOT_CORRUPT_SITE

FAULT_SITES = (
    KERNEL_RAISE,
    KERNEL_HANG,
    SHARD_DEATH,
    SWAP_FAILURE,
    CACHE_CODEC,
    PROMOTE_FAILURE,
    SNAPSHOT_CORRUPT,
)


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, how often, how many times, and how.

    Attributes
    ----------
    site:
        Injection-site name (one of :data:`FAULT_SITES`, or any custom
        site a test registers itself).
    probability:
        Chance that one pass through the site fires, drawn from the
        injector's per-site seeded RNG (1.0 = every eligible pass).
    max_fires:
        Stop firing after this many injections (``None`` = unbounded).
    start_after:
        Skip the first N passes through the site, so a load test can
        establish a healthy baseline before the chaos starts.
    hang_s:
        When positive the site *sleeps* this long instead of raising --
        the "hung kernel" fault class.
    """

    site: str
    probability: float = 1.0
    max_fires: Optional[int] = None
    start_after: int = 0
    hang_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.site:
            raise ConfigurationError("fault site must be a non-empty string")
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"probability must lie in (0, 1], got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires <= 0:
            raise ConfigurationError(
                f"max_fires must be positive or None, got {self.max_fires}"
            )
        if self.start_after < 0 or self.hang_s < 0:
            raise ConfigurationError("start_after and hang_s must be non-negative")


class FaultInjector:
    """Deterministic, seed-replayable fault injection.

    Each site draws from its own ``random.Random`` stream seeded with
    ``f"{seed}:{site}"``, so whether the Kth pass through a site fires is a
    pure function of ``(seed, site, K)`` -- independent of thread
    interleaving across sites and of ``PYTHONHASHSEED``.  A CI failure
    under seed S replays exactly with seed S.

    The injector is inert until specs are armed; production code paths pay
    one ``None`` check when no injector is configured at all.
    """

    def __init__(self, seed: int = 0, specs: Iterable[FaultSpec] = ()):
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._specs: dict[str, FaultSpec] = {}
        self._rngs: dict[str, random.Random] = {}
        self._passes: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        for spec in specs:
            self.arm(spec)

    def arm(self, spec: FaultSpec) -> None:
        """Arm (or replace) the spec for one site; counters keep running."""
        with self._lock:
            self._specs[spec.site] = spec
            self._rngs.setdefault(spec.site, random.Random(f"{self.seed}:{spec.site}"))

    def disarm(self, site: Optional[str] = None) -> None:
        """Stop injecting at ``site`` (or everywhere when ``None``)."""
        with self._lock:
            if site is None:
                self._specs.clear()
            else:
                self._specs.pop(site, None)

    def fires(self, site: str) -> Optional[FaultSpec]:
        """Count one pass through ``site``; return its spec iff it fires."""
        with self._lock:
            spec = self._specs.get(site)
            if spec is None:
                return None
            n = self._passes.get(site, 0)
            self._passes[site] = n + 1
            if n < spec.start_after:
                return None
            if spec.max_fires is not None and self._fired.get(site, 0) >= spec.max_fires:
                return None
            if spec.probability < 1.0 and self._rngs[site].random() >= spec.probability:
                return None
            self._fired[site] = self._fired.get(site, 0) + 1
            return spec

    def raise_if(self, site: str, **context) -> None:
        """Raise :class:`~repro.errors.InjectedFaultError` when the site fires.

        A spec with ``hang_s > 0`` sleeps instead -- the hung-kernel fault.
        """
        spec = self.fires(site)
        if spec is None:
            return
        if spec.hang_s > 0:
            time.sleep(spec.hang_s)
            return
        raise InjectedFaultError(site, **context)

    def fired(self, site: str) -> int:
        """How many times ``site`` has fired so far."""
        with self._lock:
            return self._fired.get(site, 0)

    def passes(self, site: str) -> int:
        """How many times execution has passed through ``site``."""
        with self._lock:
            return self._passes.get(site, 0)

    def counts(self) -> dict[str, int]:
        """Fired counts for every site that has fired at least once."""
        with self._lock:
            return dict(self._fired)


# --------------------------------------------------------------------- #
# Retry with jittered exponential backoff
# --------------------------------------------------------------------- #
class RetryPolicy:
    """Jittered exponential backoff for transient submit refusals.

    ``delay_s(attempt)`` for attempt 1, 2, ... is
    ``min(base * multiplier**(attempt-1), max_delay)`` scaled by a random
    factor in ``[1 - jitter, 1]`` drawn from a seeded RNG -- deterministic
    given the seed, so a replayed chaos run sleeps the same schedule.

    The budget is capped twice over: ``max_attempts`` bounds how many times
    a submit is re-tried, and the service additionally refuses to sleep
    past the request's own deadline -- a retried request can therefore
    never outlive its deadline or stack an orphaned admission (a refused
    submit leaves no state behind to orphan).
    """

    def __init__(
        self,
        max_attempts: int = 3,
        *,
        base_delay_s: float = 0.002,
        multiplier: float = 2.0,
        max_delay_s: float = 0.1,
        jitter: float = 0.5,
        seed: int = 0,
    ):
        if max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be at least 1, got {max_attempts}"
            )
        if base_delay_s <= 0 or max_delay_s <= 0 or multiplier < 1.0:
            raise ConfigurationError(
                "need base_delay_s > 0, max_delay_s > 0, multiplier >= 1; got "
                f"{base_delay_s}, {max_delay_s}, {multiplier}"
            )
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError(f"jitter must lie in [0, 1], got {jitter}")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.multiplier = float(multiplier)
        self.max_delay_s = float(max_delay_s)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._rng = random.Random(f"retry:{seed}")
        self._rng_lock = threading.Lock()

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s
        )
        if self.jitter:
            with self._rng_lock:
                delay *= 1.0 - self.jitter * self._rng.random()
        return delay


# --------------------------------------------------------------------- #
# Circuit breakers
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BreakerConfig:
    """Knobs of the per-(model, shard) circuit breakers.

    Attributes
    ----------
    failure_threshold:
        Consecutive batch failures that trip the breaker open.
    reset_timeout_s:
        How long an open breaker blocks before going half-open; also the
        minimum spacing between half-open probes.
    """

    failure_threshold: int = 5
    reset_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.reset_timeout_s <= 0:
            raise ConfigurationError(
                f"reset_timeout_s must be positive, got {self.reset_timeout_s}"
            )


#: Gauge encoding of breaker states (``serve_breaker_state{model,shard}``).
BREAKER_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


class CircuitBreaker:
    """One breaker: closed -> open after N consecutive failures -> half-open
    probe after the reset timeout -> closed again on success.

    ``allow`` is the consuming check (a half-open breaker admits at most
    one probe per reset-timeout); ``would_allow`` is the side-effect-free
    variant the service uses to decide whether a model is degraded.
    """

    def __init__(self, config: BreakerConfig):
        self.config = config
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._last_probe_at = -float("inf")

    def _state_unlocked(self, now: float) -> str:
        if self._opened_at is None:
            return "closed"
        if now - self._opened_at < self.config.reset_timeout_s:
            return "open"
        return "half_open"

    def state(self, now: float) -> str:
        with self._lock:
            return self._state_unlocked(now)

    def allow(self, now: float) -> bool:
        """May a batch be routed to this shard right now?  (Consumes the
        half-open probe slot: the next probe waits another reset timeout.)"""
        with self._lock:
            state = self._state_unlocked(now)
            if state == "closed":
                return True
            if state == "open":
                return False
            if now - self._last_probe_at >= self.config.reset_timeout_s:
                self._last_probe_at = now
                return True
            return False

    def would_allow(self, now: float) -> bool:
        """Like :meth:`allow` but without consuming the probe slot."""
        with self._lock:
            state = self._state_unlocked(now)
            if state == "closed":
                return True
            if state == "open":
                return False
            return now - self._last_probe_at >= self.config.reset_timeout_s

    def record_success(self, now: float) -> str:
        """A batch completed on this shard; returns the new state."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._last_probe_at = -float("inf")
            return "closed"

    def record_failure(self, now: float) -> str:
        """A batch failed on this shard; returns the new state."""
        with self._lock:
            state = self._state_unlocked(now)
            self._failures += 1
            if state == "half_open" or self._failures >= self.config.failure_threshold:
                self._opened_at = now
            return self._state_unlocked(now)

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures


class BreakerBoard:
    """The per-(model, shard) breaker table the service and router consult.

    Breakers are created lazily on first reference (an unreferenced shard
    is implicitly closed).  Transitions are pushed to the observability
    layer: a ``serve_breaker_state{model,shard}`` gauge per breaker and
    ``breaker_open`` / ``breaker_close`` events on state changes.
    """

    def __init__(
        self,
        config: Optional[BreakerConfig] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        registry: Optional["MetricRegistry"] = None,
        events: Optional["EventLog"] = None,
    ):
        self.config = config or BreakerConfig()
        self._clock = clock
        self._registry = registry
        self._events = events
        self._lock = threading.Lock()
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}
        self._last_state: dict[tuple[str, str], str] = {}
        #: Optional ``(model, shard)`` callback invoked when a breaker
        #: transitions to open.  The rollout manager hooks this to trigger
        #: breaker-driven rollback of a freshly promoted model; exceptions
        #: are swallowed so a misbehaving hook cannot poison the breaker.
        self.on_open: Optional[Callable[[str, str], None]] = None

    def breaker(self, model: str, shard: str) -> CircuitBreaker:
        key = (model, shard)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.config)
                self._breakers[key] = breaker
                self._last_state[key] = "closed"
            return breaker

    def _publish(self, model: str, shard: str, state: str) -> None:
        if self._registry is not None:
            self._registry.gauge(
                "serve_breaker_state",
                labels={"model": model, "shard": shard},
                help="Circuit-breaker state (0 closed, 1 half-open, 2 open)",
            ).set(BREAKER_STATE_CODES[state])
        with self._lock:
            previous = self._last_state.get((model, shard), "closed")
            self._last_state[(model, shard)] = state
        if previous == state:
            return
        if state == "open" and self.on_open is not None:
            try:
                self.on_open(model, shard)
            except Exception:  # pragma: no cover - hooks must not poison
                pass
        if self._events is None:
            return
        if state == "open":
            self._events.emit("breaker_open", model=model, shard=shard)
        elif previous == "open" and state == "closed":
            self._events.emit("breaker_close", model=model, shard=shard)

    def allow(self, model: str, shard: str) -> bool:
        """Routing gate: may a batch go to this shard?  Consumes probes."""
        return self.breaker(model, shard).allow(self._clock())

    def would_allow_any(self, model: str, shards: Sequence[str]) -> bool:
        """Degradation check: could *any* shard of the model take a batch?

        Side-effect free (no probe is consumed), so the service can use it
        per-submit without starving the router of half-open probes.
        """
        now = self._clock()
        return any(self.breaker(model, shard).would_allow(now) for shard in shards)

    def record(self, model: str, shard: str, *, ok: bool) -> str:
        """Feed one batch outcome into the breaker; returns the new state."""
        breaker = self.breaker(model, shard)
        now = self._clock()
        state = breaker.record_success(now) if ok else breaker.record_failure(now)
        self._publish(model, shard, state)
        return state

    def state(self, model: str, shard: str) -> str:
        return self.breaker(model, shard).state(self._clock())

    def states(self) -> dict[str, str]:
        """Current state per ``"model/shard"`` key (for snapshots/tests)."""
        with self._lock:
            keys = list(self._breakers)
        now = self._clock()
        return {f"{m}/{s}": self._breakers[(m, s)].state(now) for m, s in keys}


# --------------------------------------------------------------------- #
# Shard supervision
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the shard watchdog.

    Attributes
    ----------
    interval_s:
        Wall-clock pause between watchdog scans.
    hang_timeout_s:
        A worker busy on one batch longer than this is declared wedged:
        its batch is failed (terminal futures) and the worker is replaced.
        Must comfortably exceed the worst-case legitimate kernel time.
    max_restarts:
        Per-shard restart budget; a shard exceeding it is disabled (its
        queue is failed and the router stops selecting it) instead of
        being restarted forever.
    """

    interval_s: float = 0.25
    hang_timeout_s: float = 30.0
    max_restarts: int = 3

    def __post_init__(self) -> None:
        if self.interval_s <= 0 or self.hang_timeout_s <= 0:
            raise ConfigurationError(
                "interval_s and hang_timeout_s must be positive, got "
                f"{self.interval_s}, {self.hang_timeout_s}"
            )
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be non-negative, got {self.max_restarts}"
            )


class ShardSupervisor:
    """Watchdog thread: detect dead/wedged worker shards and restart them.

    Per scan, every supervisable shard (started, not stopped, not
    disabled) is checked against two conditions:

    * **dead** -- the worker thread is no longer alive (e.g. an injected
      ``shard_death``, or a bug that escaped the per-batch catch), or
    * **wedged** -- the worker has been busy on one batch longer than
      ``hang_timeout_s`` (a hung kernel; Python threads cannot be killed,
      so the wedged thread is *abandoned*: its epoch is invalidated and any
      late delivery it attempts is discarded).

    Either way the in-flight batch is failed with
    :class:`~repro.errors.ShardFailedError` (every future reaches a
    terminal state) and a replacement worker thread is started on the same
    queue, so still-queued batches are re-dispatched automatically.  A
    shard that exhausts ``max_restarts`` is disabled instead: its queue is
    failed terminally and the router skips it from then on.
    """

    def __init__(
        self,
        registry: "ModelRegistry",
        *,
        config: Optional[SupervisorConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        on_restart: Optional[Callable[[str, str, str], None]] = None,
        on_disabled: Optional[Callable[[str, str, str], None]] = None,
    ):
        self.registry = registry
        self.config = config or SupervisorConfig()
        self._clock = clock
        self._on_restart = on_restart
        self._on_disabled = on_disabled
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.restarts_performed = 0

    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="shard-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.scan()
            except Exception:  # pragma: no cover - the watchdog must survive
                pass

    def scan(self) -> int:
        """One supervision pass; returns the number of restarts performed.

        Public so tests and the chaos gate can drive supervision
        synchronously with an injected clock.
        """
        restarted = 0
        now = self._clock()
        for model, shard in self.registry.iter_shards():
            if not shard.supervisable:
                continue
            busy_s = shard.busy_seconds(now)
            if not shard.thread_alive:
                reason = "died"
            elif busy_s is not None and busy_s > self.config.hang_timeout_s:
                reason = "wedged"
            else:
                continue
            error = ShardFailedError(shard.name, reason)
            if shard.restarts >= self.config.max_restarts:
                shard.disable(error)
                if self._on_disabled is not None:
                    self._on_disabled(model, shard.name, reason)
                continue
            shard.abandon_current(error)
            shard.restart()
            restarted += 1
            self.restarts_performed += 1
            if self._on_restart is not None:
                self._on_restart(model, shard.name, reason)
        return restarted
